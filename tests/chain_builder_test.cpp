// ChainBuilder / ThreadPool tests.
//
// The load-bearing property: HOW a context is built — serially, fanned
// out across a pool, or grown incrementally through extend() — must never
// change a single produced byte. Headers, commitments, and whole wire
// responses are compared across all three paths for every Design; the
// golden tests pin the absolute bytes, these pin the equivalences.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/chain_builder.hpp"
#include "core/prover.hpp"
#include "node/session.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::uint64_t kN = 10'000;
  std::vector<std::atomic<std::uint32_t>> hits(kN);
  pool.parallel_for(kN, [&](std::uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  pool.parallel_for(64, [&](std::uint64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::uint64_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1000,
                                 [&](std::uint64_t i) {
                                   if (i == 137) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed run.
  std::atomic<std::uint64_t> n{0};
  pool.parallel_for(100, [&](std::uint64_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 100u);
}

TEST(ThreadPool, SharedPoolIsAProcessSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

// ---------------------------------------------------------------------------

ExperimentSetup test_setup(std::uint32_t blocks, std::uint64_t seed = 77) {
  WorkloadConfig c;
  c.seed = seed;
  c.num_blocks = blocks;
  c.background_txs_per_block = 6;
  c.profiles = {{"p", 8, 6}, {"q", 3, 2}};
  return make_setup(c);
}

Bytes query_bytes(const ChainContext& ctx, const Address& addr) {
  Writer w;
  build_query_response(ctx, addr).serialize(w);
  return w.take();
}

/// Serial, parallel, and extend-grown contexts must be byte-identical:
/// same header bytes at every height, same wire bytes for every profile
/// query. Exercised for every Design because each scheme commits to a
/// different subset of the derived state.
TEST(ChainBuilder, SerialParallelAndExtendAreByteIdentical) {
  const ExperimentSetup setup = test_setup(22);
  ThreadPool pool(4);

  for (Design design : {Design::kStrawman, Design::kStrawmanVariant,
                        Design::kLvqNoBmt, Design::kLvqNoSmt, Design::kLvq}) {
    ProtocolConfig config{design, BloomGeometry{128, 4}, 4};

    ChainBuildOptions serial;
    serial.threads = 1;
    ChainBuildOptions parallel;
    parallel.pool = &pool;

    auto serial_ctx = ChainBuilder::build(setup.workload, config, serial);
    auto parallel_ctx = ChainBuilder::build(setup.workload, config, parallel);

    // Extend-grown: first 15 blocks cold, remaining 7 appended in two
    // uneven batches (one crossing a segment boundary).
    auto base_workload = std::make_shared<Workload>();
    base_workload->blocks.assign(setup.workload->blocks.begin(),
                                 setup.workload->blocks.begin() + 15);
    auto grown = ChainBuilder::build(std::move(base_workload), config, serial);
    grown = grown->extend({setup.workload->blocks.begin() + 15,
                           setup.workload->blocks.begin() + 18},
                          parallel);
    grown = grown->extend({setup.workload->blocks.begin() + 18,
                           setup.workload->blocks.end()},
                          serial);

    ASSERT_EQ(parallel_ctx->tip_height(), 22u);
    ASSERT_EQ(grown->tip_height(), 22u);
    for (std::uint64_t h = 1; h <= 22; ++h) {
      Writer a, b, c;
      serial_ctx->chain().at_height(h).header.serialize(a);
      parallel_ctx->chain().at_height(h).header.serialize(b);
      grown->chain().at_height(h).header.serialize(c);
      ASSERT_EQ(a.data(), b.data())
          << design_name(design) << " height " << h << " serial vs parallel";
      ASSERT_EQ(a.data(), c.data())
          << design_name(design) << " height " << h << " serial vs extend";
    }
    for (const AddressProfile& p : setup.workload->profiles) {
      Bytes want = query_bytes(*serial_ctx, p.address);
      EXPECT_EQ(want, query_bytes(*parallel_ctx, p.address))
          << design_name(design) << " " << p.label;
      EXPECT_EQ(want, query_bytes(*grown, p.address))
          << design_name(design) << " " << p.label;
    }
  }
}

TEST(ChainBuilder, StagedApiMatchesOneShotBuild) {
  const ExperimentSetup setup = test_setup(10);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};

  ChainBuilder b(config);
  b.append(setup.workload->blocks[0]);
  b.add_blocks(std::span<const std::vector<Transaction>>(
      setup.workload->blocks.data() + 1, 4));
  b.add_blocks(std::vector<std::vector<Transaction>>(
      setup.workload->blocks.begin() + 5, setup.workload->blocks.end()));
  EXPECT_EQ(b.pending_blocks(), 10u);
  auto staged = b.freeze();
  EXPECT_EQ(b.pending_blocks(), 0u) << "freeze consumes the staged blocks";

  auto oneshot = ChainBuilder::build(setup.workload, config);
  ASSERT_EQ(staged->tip_height(), oneshot->tip_height());
  EXPECT_EQ(staged->chain().at_height(10).header.hash(),
            oneshot->chain().at_height(10).header.hash());
}

/// extend() must alias the prefix, not recompute it: derived blocks,
/// position lists, chain blocks, and sealed BMT segments are the same
/// heap objects; only the open tail segment is rebuilt.
TEST(ChainBuilder, ExtendSharesThePrefixByPointer) {
  const ExperimentSetup setup = test_setup(11);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  auto base = ChainBuilder::build(setup.workload, config);

  WorkloadConfig extra_c;
  extra_c.seed = 991;
  extra_c.num_blocks = 2;
  extra_c.background_txs_per_block = 5;
  extra_c.profiles.clear();
  Workload extra = generate_workload(extra_c);
  auto grown = base->extend(std::move(extra.blocks));

  ASSERT_EQ(grown->tip_height(), 13u);
  for (std::uint64_t h = 1; h <= 11; ++h) {
    EXPECT_EQ(grown->derived().slices()[h - 1], base->derived().slices()[h - 1]);
    EXPECT_EQ(grown->positions().slice(h), base->positions().slice(h));
    EXPECT_EQ(grown->chain().blocks()[h - 1], base->chain().blocks()[h - 1]);
  }
  // 11 blocks at M=4: segments [1..4][5..8] sealed, [9..11] open. After
  // +2 blocks the open segment grew to [9..12] and [13] started.
  ASSERT_EQ(base->bmts().size(), 3u);
  ASSERT_EQ(grown->bmts().size(), 4u);
  EXPECT_EQ(grown->bmts()[0], base->bmts()[0]) << "sealed segment shared";
  EXPECT_EQ(grown->bmts()[1], base->bmts()[1]) << "sealed segment shared";
  EXPECT_NE(grown->bmts()[2], base->bmts()[2]) << "open tail rebuilt";

  // A base whose tail segment is exactly full seals it: nothing rebuilt.
  auto full_workload = std::make_shared<Workload>();
  full_workload->blocks.assign(setup.workload->blocks.begin(),
                               setup.workload->blocks.begin() + 8);
  auto sealed = ChainBuilder::build(std::move(full_workload), config);
  auto sealed_grown =
      sealed->extend({setup.workload->blocks.begin() + 8,
                      setup.workload->blocks.begin() + 9});
  ASSERT_EQ(sealed->bmts().size(), 2u);
  EXPECT_EQ(sealed_grown->bmts()[0], sealed->bmts()[0]);
  EXPECT_EQ(sealed_grown->bmts()[1], sealed->bmts()[1])
      << "a full tail segment is sealed and must be reused";
}

/// The base context must stay fully queryable after (and independent of)
/// any number of extensions — including after the base is destroyed.
TEST(ChainBuilder, BaseSurvivesExtendAndExtensionSurvivesBase) {
  const ExperimentSetup setup = test_setup(9);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  const Address addr = setup.workload->profiles[0].address;

  auto base = ChainBuilder::build(setup.workload, config);
  Bytes before = query_bytes(*base, addr);

  WorkloadConfig extra_c;
  extra_c.seed = 17;
  extra_c.num_blocks = 3;
  extra_c.background_txs_per_block = 4;
  extra_c.profiles.clear();
  auto grown = base->extend(generate_workload(extra_c).blocks);

  EXPECT_EQ(query_bytes(*base, addr), before) << "base untouched by extend";
  Bytes grown_bytes = query_bytes(*grown, addr);
  base.reset();  // successor must not dangle into the dead base
  EXPECT_EQ(query_bytes(*grown, addr), grown_bytes);
}

TEST(ChainBuilder, ExtendRejectsEmptyBatch) {
  const ExperimentSetup setup = test_setup(8);
  auto ctx = ChainBuilder::build(setup.workload,
                                 ProtocolConfig{Design::kLvq, {128, 4}, 4});
  EXPECT_THROW(ctx->extend({}), std::logic_error);
}

TEST(FullNode, AppendBlocksMatchesFromScratchRebuild) {
  const ExperimentSetup setup = test_setup(18, /*seed=*/5);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};

  auto base_workload = std::make_shared<Workload>();
  base_workload->blocks.assign(setup.workload->blocks.begin(),
                               setup.workload->blocks.begin() + 12);
  FullNode appended(ChainBuilder::build(std::move(base_workload), config));
  appended.append_blocks({setup.workload->blocks.begin() + 12,
                          setup.workload->blocks.end()});

  FullNode rebuilt(ChainBuilder::build(setup.workload, config));
  ASSERT_EQ(appended.tip_height(), rebuilt.tip_height());

  auto ah = appended.headers();
  auto rh = rebuilt.headers();
  for (std::size_t i = 0; i < ah.size(); ++i) {
    ASSERT_EQ(ah[i].hash(), rh[i].hash()) << "height " << i + 1;
  }
  for (const AddressProfile& p : setup.workload->profiles) {
    Writer w;
    QueryRequest{p.address}.serialize(w);
    Bytes req = encode_envelope(MsgType::kQueryRequest,
                                ByteSpan{w.data().data(), w.data().size()});
    EXPECT_EQ(appended.handle_message(ByteSpan{req.data(), req.size()}),
              rebuilt.handle_message(ByteSpan{req.data(), req.size()}))
        << p.label;
  }
}

/// End-to-end across the dedup'd session path: a light node that synced
/// against the extended node verifies queries exactly as if the chain had
/// been built whole.
TEST(FullNode, AppendedChainVerifiesEndToEnd) {
  const ExperimentSetup setup = test_setup(16, /*seed=*/31);
  ProtocolConfig config{Design::kLvq, BloomGeometry{256, 4}, 4};

  auto base_workload = std::make_shared<Workload>();
  base_workload->blocks.assign(setup.workload->blocks.begin(),
                               setup.workload->blocks.begin() + 10);
  FullNode full(ChainBuilder::build(std::move(base_workload), config));
  full.append_blocks({setup.workload->blocks.begin() + 10,
                      setup.workload->blocks.end()});

  LightNode light(config);
  LoopbackTransport transport(
      [&](ByteSpan req) { return full.handle_message(req); });
  ASSERT_TRUE(light.sync_headers(transport));
  ASSERT_EQ(light.tip_height(), 16u);

  for (const AddressProfile& p : setup.workload->profiles) {
    auto result = light.query(transport, p.address);
    ASSERT_TRUE(result.outcome.ok)
        << p.label << ": " << verify_error_name(result.outcome.error);
    GroundTruth gt = scan_ground_truth(*setup.workload, p.address);
    std::set<std::pair<std::uint64_t, Hash256>> expect(gt.txs.begin(),
                                                       gt.txs.end());
    std::set<std::pair<std::uint64_t, Hash256>> got;
    for (const VerifiedBlockTxs& b : result.outcome.history.blocks) {
      for (const Transaction& tx : b.txs) got.emplace(b.height, tx.txid());
    }
    EXPECT_EQ(got, expect) << p.label;
  }
}

}  // namespace
}  // namespace lvq
