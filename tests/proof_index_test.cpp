// ProofIndex tests.
//
// The load-bearing property: the precomputed proof-assembly tables are a
// pure accelerator — every proof byte a context produces with its index is
// identical to the tree-walk fallback, for every design, and an extended
// context aliases the sealed prefix of its base's index instead of
// rederiving it. The engine's cold fan-out rides the same guarantee.
#include <gtest/gtest.h>

#include <set>

#include "core/chain_builder.hpp"
#include "core/proof_index.hpp"
#include "core/prover.hpp"
#include "merkle/merkle_tree.hpp"
#include "merkle/sorted_merkle_tree.hpp"
#include "node/session.hpp"
#include "server/serving_engine.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

ExperimentSetup test_setup(std::uint32_t blocks, std::uint64_t seed = 404) {
  WorkloadConfig c;
  c.seed = seed;
  c.num_blocks = blocks;
  c.background_txs_per_block = 7;
  c.profiles = {{"busy", 10, 7}, {"rare", 2, 2}, {"ghost", 0, 0}};
  return make_setup(c);
}

ByteSpan as_span(const Bytes& b) { return ByteSpan{b.data(), b.size()}; }

Bytes query_bytes(const ChainContext& ctx, const Address& addr,
                  ThreadPool* pool = nullptr) {
  Writer w;
  build_query_response(ctx, addr, pool).serialize(w);
  return w.take();
}

Bytes make_query_request(const Address& a) {
  Writer w;
  QueryRequest{a}.serialize(w);
  return encode_envelope(MsgType::kQueryRequest, as_span(w.data()));
}

/// Every design, every profile (busy / rare / never-seen): query responses
/// from an indexed context, an index-less context, and an indexed context
/// assembling across a pool must be byte-identical.
TEST(ProofIndex, QueryBytesIdenticalWithAndWithoutIndex) {
  const ExperimentSetup setup = test_setup(22);
  ThreadPool pool(4);

  for (Design design : {Design::kStrawman, Design::kStrawmanVariant,
                        Design::kLvqNoBmt, Design::kLvqNoSmt, Design::kLvq}) {
    ProtocolConfig config{design, BloomGeometry{128, 4}, 4};

    ChainBuildOptions with_index;  // proof_index defaults to true
    ChainBuildOptions without_index;
    without_index.proof_index = false;

    auto indexed = ChainBuilder::build(setup.workload, config, with_index);
    auto walked = ChainBuilder::build(setup.workload, config, without_index);
    ASSERT_NE(indexed->proof_index(), nullptr) << design_name(design);
    EXPECT_EQ(walked->proof_index(), nullptr) << design_name(design);

    for (const AddressProfile& p : setup.workload->profiles) {
      Bytes want = query_bytes(*walked, p.address);
      EXPECT_EQ(want, query_bytes(*indexed, p.address))
          << design_name(design) << " " << p.label;
      EXPECT_EQ(want, query_bytes(*indexed, p.address, &pool))
          << design_name(design) << " " << p.label << " (pooled)";
    }
  }
}

/// The streaming serializer must emit byte-for-byte what the structured
/// path (build_query_response + serialize) emits — with the index, without
/// it, and across a pool — and its size-only companion must predict the
/// byte count exactly.
TEST(ProofIndex, DirectSerializationMatchesStructuredPath) {
  const ExperimentSetup setup = test_setup(22);
  ThreadPool pool(4);

  for (Design design : {Design::kStrawman, Design::kStrawmanVariant,
                        Design::kLvqNoBmt, Design::kLvqNoSmt, Design::kLvq}) {
    ProtocolConfig config{design, BloomGeometry{128, 4}, 4};

    ChainBuildOptions without_index;
    without_index.proof_index = false;
    auto indexed = ChainBuilder::build(setup.workload, config, {});
    auto walked = ChainBuilder::build(setup.workload, config, without_index);

    for (const AddressProfile& p : setup.workload->profiles) {
      const Bytes want = query_bytes(*indexed, p.address);
      for (const auto* ctx : {indexed.get(), walked.get()}) {
        Writer serial;
        serialize_query_response(serial, *ctx, p.address);
        EXPECT_EQ(want, serial.data())
            << design_name(design) << " " << p.label
            << (ctx == walked.get() ? " (tree-walk)" : " (indexed)");

        Writer pooled;
        serialize_query_response(pooled, *ctx, p.address, &pool);
        EXPECT_EQ(want, pooled.data())
            << design_name(design) << " " << p.label << " (pooled)";
      }

      if (config.has_bmt()) {
        BloomKey key = BloomKey::from_bytes(p.address.span());
        std::vector<std::uint64_t> cbp = config.bloom.positions(key);
        for (const SubSegment& range :
             query_forest(indexed->tip_height(), config.segment_length)) {
          Writer sw;
          serialize_segment_proof(sw, *indexed, p.address, cbp, range);
          EXPECT_EQ(sw.size(),
                    segment_proof_wire_size(*indexed, p.address, cbp, range))
              << design_name(design) << " " << p.label;
        }
      }
    }
  }
}

/// Unit-level equality: each table answers exactly what the tree walk
/// would. SMT branches, absence proofs, tx Merkle branches, and the
/// tx-by-leaf rank mapping are compared against freshly built trees for
/// every block.
TEST(ProofIndex, BlockTablesMatchTreeWalk) {
  const ExperimentSetup setup = test_setup(12);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  auto ctx = ChainBuilder::build(setup.workload, config);
  const ProofIndex* index = ctx->proof_index();
  ASSERT_NE(index, nullptr);
  const Address ghost = Address::derive(str_bytes("never on chain"));

  for (std::uint64_t h = 1; h <= ctx->tip_height(); ++h) {
    const BlockProofIndex* bidx = index->block(h);
    ASSERT_NE(bidx, nullptr) << "height " << h;
    ASSERT_TRUE(bidx->has_tx_tables());
    ASSERT_TRUE(bidx->has_smt_tables());

    const BlockDerived& derived = ctx->derived().at(h);
    const Block& block = ctx->chain().at_height(h);
    SortedMerkleTree smt(derived.smt_leaves);
    MerkleTree mt(derived.txids);

    for (std::uint64_t rank = 0; rank < derived.smt_leaves.size(); ++rank) {
      const SmtLeaf& leaf = derived.smt_leaves[rank];
      EXPECT_EQ(bidx->rank_of(leaf.address), rank);

      SmtBranch want = smt.branch(rank);
      SmtBranch got = bidx->smt_branch(rank);
      Writer a, b;
      want.serialize(a);
      got.serialize(b);
      EXPECT_EQ(a.data(), b.data()) << "height " << h << " rank " << rank;

      // The rank mapping lists exactly the involved transactions, in
      // ascending order, count-consistent with the SMT leaf.
      const std::vector<std::uint32_t>& txs = bidx->txs_for_leaf(rank);
      ASSERT_EQ(txs.size(), leaf.count);
      for (std::size_t k = 0; k < txs.size(); ++k) {
        if (k > 0) {
          EXPECT_LT(txs[k - 1], txs[k]);
        }
        EXPECT_TRUE(block.txs[txs[k]].involves(leaf.address));
      }
    }

    ASSERT_FALSE(bidx->rank_of(ghost).has_value());
    Writer wa, wb;
    smt.absence_proof(ghost).serialize(wa);
    bidx->smt_absence(ghost).serialize(wb);
    EXPECT_EQ(wa.data(), wb.data()) << "height " << h;

    for (std::uint32_t t = 0; t < derived.txids.size(); ++t) {
      Writer ma, mb;
      mt.branch(t).serialize(ma);
      bidx->tx_branch(t).serialize(mb);
      EXPECT_EQ(ma.data(), mb.data()) << "height " << h << " tx " << t;
    }
  }
}

/// The precomputed segment BF arrays equal on-demand materialization for
/// every complete node of every segment, including the incomplete tail.
TEST(ProofIndex, SegmentBfsMatchOnDemandMaterialization) {
  const ExperimentSetup setup = test_setup(11);  // M=4: two sealed + [9..11]
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  auto ctx = ChainBuilder::build(setup.workload, config);
  const ProofIndex* index = ctx->proof_index();
  ASSERT_NE(index, nullptr);
  ASSERT_EQ(index->segment_slices().size(), ctx->bmts().size());

  for (std::size_t s = 0; s < ctx->bmts().size(); ++s) {
    const SegmentBmt& bmt = *ctx->bmts()[s];
    const SegmentProofIndex* sidx = index->segment_slices()[s].get();
    ASSERT_NE(sidx, nullptr);
    EXPECT_EQ(sidx->first_height(), bmt.first_height());
    EXPECT_EQ(sidx->available(), bmt.available());
    std::uint32_t depth = 0;
    while ((1u << depth) < bmt.segment_length()) ++depth;
    for (std::uint32_t level = 0; level <= depth; ++level) {
      for (std::uint64_t j = 0; j < (bmt.segment_length() >> level); ++j) {
        if (!bmt.node_complete(level, j)) continue;
        EXPECT_EQ(sidx->bf(level, j), bmt.node_bf(level, j))
            << "segment " << s << " node (" << level << "," << j << ")";
      }
    }
  }
}

/// Budget gating: a budget too small for the segment BF arrays skips them
/// (per-block tables survive) and the prover falls back per part —
/// bytes unchanged.
TEST(ProofIndex, SegmentPartSkippedWhenOverBudget) {
  const ExperimentSetup setup = test_setup(10);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};

  ChainBuildOptions tiny_budget;
  tiny_budget.proof_index_bf_budget = 64;  // < one filter
  auto gated = ChainBuilder::build(setup.workload, config, tiny_budget);
  auto full = ChainBuilder::build(setup.workload, config);

  ASSERT_NE(gated->proof_index(), nullptr);
  EXPECT_TRUE(gated->proof_index()->segment_slices().empty());
  EXPECT_EQ(gated->proof_index()->segment_for_height(1), nullptr);
  EXPECT_NE(gated->proof_index()->block(1), nullptr);
  ASSERT_FALSE(full->proof_index()->segment_slices().empty());

  for (const AddressProfile& p : setup.workload->profiles) {
    EXPECT_EQ(query_bytes(*gated, p.address), query_bytes(*full, p.address))
        << p.label;
  }
}

/// extend() must alias the sealed prefix of the index by pointer — block
/// tables for old heights and sealed segment BF arrays are the same heap
/// objects — and a base built without an index stays index-less after
/// extend (an extend is O(new blocks), never O(chain)).
TEST(ProofIndex, ExtendAliasesSealedPrefix) {
  const ExperimentSetup setup = test_setup(13);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};

  auto all = std::make_shared<Workload>();
  all->blocks = setup.workload->blocks;
  auto base_workload = std::make_shared<Workload>();
  base_workload->blocks.assign(all->blocks.begin(), all->blocks.begin() + 11);
  auto base = ChainBuilder::build(base_workload, config);
  auto grown = base->extend({all->blocks.begin() + 11, all->blocks.end()});

  const ProofIndex* bi = base->proof_index();
  const ProofIndex* gi = grown->proof_index();
  ASSERT_NE(bi, nullptr);
  ASSERT_NE(gi, nullptr);
  ASSERT_EQ(gi->tip_height(), 13u);

  for (std::uint64_t h = 1; h <= 11; ++h) {
    EXPECT_EQ(gi->block_slices()[h - 1], bi->block_slices()[h - 1])
        << "block tables rederived at height " << h;
  }
  // 11 blocks at M=4: segments [1..4][5..8] sealed, [9..11] open. After
  // +2 blocks the open segment grew to [9..12] and [13] started.
  ASSERT_EQ(bi->segment_slices().size(), 3u);
  ASSERT_EQ(gi->segment_slices().size(), 4u);
  EXPECT_EQ(gi->segment_slices()[0], bi->segment_slices()[0]);
  EXPECT_EQ(gi->segment_slices()[1], bi->segment_slices()[1]);
  EXPECT_NE(gi->segment_slices()[2], bi->segment_slices()[2])
      << "open tail segment must be rebuilt";

  // Byte-identity against a from-scratch build of the full chain, with the
  // base dead (the aliased slices must own their data).
  auto rebuilt = ChainBuilder::build(all, config);
  base.reset();
  for (const AddressProfile& p : setup.workload->profiles) {
    EXPECT_EQ(query_bytes(*grown, p.address), query_bytes(*rebuilt, p.address))
        << p.label;
  }

  // An index-less base stays index-less across extend.
  ChainBuildOptions no_index;
  no_index.proof_index = false;
  auto bare = ChainBuilder::build(base_workload, config, no_index);
  auto bare_grown = bare->extend({all->blocks.begin() + 11, all->blocks.end()});
  EXPECT_EQ(bare->proof_index(), nullptr);
  EXPECT_EQ(bare_grown->proof_index(), nullptr);
}

/// End-to-end: a light node synced against an extended, indexed node
/// verifies every profile's history — the aliased index serves proofs for
/// both the sealed prefix and the fresh heights.
TEST(ProofIndex, ExtendedIndexedChainVerifiesEndToEnd) {
  const ExperimentSetup setup = test_setup(16, /*seed=*/88);
  ProtocolConfig config{Design::kLvq, BloomGeometry{256, 4}, 4};

  auto base_workload = std::make_shared<Workload>();
  base_workload->blocks.assign(setup.workload->blocks.begin(),
                               setup.workload->blocks.begin() + 10);
  FullNode full(ChainBuilder::build(std::move(base_workload), config));
  full.append_blocks({setup.workload->blocks.begin() + 10,
                      setup.workload->blocks.end()});
  ASSERT_NE(full.context()->proof_index(), nullptr);

  LightNode light(config);
  LoopbackTransport transport(
      [&](ByteSpan req) { return full.handle_message(req); });
  ASSERT_TRUE(light.sync_headers(transport));
  ASSERT_EQ(light.tip_height(), 16u);

  for (const AddressProfile& p : setup.workload->profiles) {
    auto result = light.query(transport, p.address);
    ASSERT_TRUE(result.outcome.ok)
        << p.label << ": " << verify_error_name(result.outcome.error);
    GroundTruth gt = scan_ground_truth(*setup.workload, p.address);
    std::set<std::pair<std::uint64_t, Hash256>> expect(gt.txs.begin(),
                                                       gt.txs.end());
    std::set<std::pair<std::uint64_t, Hash256>> got;
    for (const VerifiedBlockTxs& b : result.outcome.history.blocks) {
      for (const Transaction& tx : b.txs) got.emplace(b.height, tx.txid());
    }
    EXPECT_EQ(got, expect) << p.label;
  }
}

/// The serving engine's cold path (caches disabled, per-segment fan-out
/// across the shared pool) must produce the same bytes as the node's own
/// handler, serial or parallel.
TEST(ProofIndex, EngineColdFanoutMatchesNodeBytes) {
  const ExperimentSetup setup = test_setup(24, /*seed=*/12);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  FullNode node(ChainBuilder::build(setup.workload, config));

  ServingEngineOptions cold;
  cold.workers = 2;
  cold.cache_bytes = 0;  // no response cache, no segment cache
  cold.parallel_assembly = true;
  ServingEngine parallel_engine(node, cold);

  cold.parallel_assembly = false;
  ServingEngine serial_engine(node, cold);

  for (const AddressProfile& p : setup.workload->profiles) {
    Bytes req = make_query_request(p.address);
    Bytes want = node.handle_message(as_span(req));
    EXPECT_EQ(parallel_engine.handle(as_span(req)), want) << p.label;
    EXPECT_EQ(serial_engine.handle(as_span(req)), want) << p.label;
  }

  // With caches disabled nothing may be retained between requests.
  MetricsSnapshot s = parallel_engine.snapshot();
  EXPECT_EQ(s.cache_entries, 0u);
  EXPECT_EQ(s.segment_entries, 0u);
}

}  // namespace
}  // namespace lvq
