// Tests for the node layer: header sync over RPC, storage accounting,
// query sessions, and the message envelope protocol.
#include <gtest/gtest.h>

#include "node/session.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 31;
    c.num_blocks = 40;
    c.background_txs_per_block = 8;
    c.profiles = {{"p", 9, 6}};
    return make_setup(c);
  }();
  return s;
}

constexpr BloomGeometry kGeom{256, 6};

TEST(Envelope, RoundTrip) {
  Bytes payload = {1, 2, 3};
  Bytes msg = encode_envelope(MsgType::kQueryRequest,
                              ByteSpan{payload.data(), payload.size()});
  auto [type, body] = decode_envelope(ByteSpan{msg.data(), msg.size()});
  EXPECT_EQ(type, MsgType::kQueryRequest);
  EXPECT_TRUE(span_equal(body, ByteSpan{payload.data(), payload.size()}));
}

TEST(Envelope, RejectsEmptyAndUnknown) {
  EXPECT_THROW(decode_envelope({}), SerializeError);
  Bytes bad = {99};
  EXPECT_THROW(decode_envelope(ByteSpan{bad.data(), bad.size()}),
               SerializeError);
}

TEST(LightNode, SyncsHeadersOverRpc) {
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode full(setup().workload, setup().derived, config);
  LightNode light(config);
  LoopbackTransport transport(
      [&](ByteSpan req) { return full.handle_message(req); });
  ASSERT_TRUE(light.sync_headers(transport));
  EXPECT_EQ(light.tip_height(), 40u);
  EXPECT_EQ(light.headers().back().hash(),
            full.context()->chain().at_height(40).header.hash());
}

TEST(LightNode, RejectsBrokenHeaderChain) {
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode full(setup().workload, setup().derived, config);
  auto headers = full.headers();
  headers[20].nonce ^= 1;  // breaks headers[21].prev_hash linkage
  LightNode light(config);
  EXPECT_THROW(light.set_headers(std::move(headers)), std::logic_error);
}

TEST(LightNode, RejectsSchemeMismatch) {
  ProtocolConfig lvq_config{Design::kLvq, kGeom, 8};
  ProtocolConfig other_config{Design::kStrawmanVariant, kGeom, 8};
  FullNode full(setup().workload, setup().derived, lvq_config);
  LightNode light(other_config);
  EXPECT_THROW(light.set_headers(full.headers()), std::logic_error);
}

TEST(LightNode, SyncFailsGracefullyOnGarbageServer) {
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  LightNode light(config);
  LoopbackTransport garbage([](ByteSpan) { return Bytes{0x42}; });
  EXPECT_FALSE(light.sync_headers(garbage));
  EXPECT_EQ(light.tip_height(), 0u);

  LoopbackTransport error_reply(
      [](ByteSpan) { return encode_envelope(MsgType::kError, {}); });
  EXPECT_FALSE(light.sync_headers(error_reply));
}

TEST(LightNode, QueryAgainstGarbageResponse) {
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode full(setup().workload, setup().derived, config);
  LightNode light(config);
  light.set_headers(full.headers());
  LoopbackTransport garbage([](ByteSpan) { return Bytes{0x02, 0xff}; });
  auto result = light.query(garbage, setup().workload->profiles[0].address);
  EXPECT_FALSE(result.outcome.ok);
  EXPECT_EQ(result.outcome.error, VerifyError::kBadEncoding);
}

TEST(LightNode, VerifyRejectsResponseForDifferentAddress) {
  // Query A's proof must not verify as B's history.
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode full(setup().workload, setup().derived, config);
  LightNode light(config);
  light.set_headers(full.headers());
  const Address& a = setup().workload->profiles[0].address;
  Address b = Address::derive(str_bytes("someone else"));
  QueryResponse resp = full.query(a);
  VerifyOutcome out = light.verify(b, resp);
  // Either the BMT endpoints don't clear B's bit positions or the SMT
  // proofs are for the wrong leaf — both must reject.
  EXPECT_FALSE(out.ok);
}

TEST(FullNode, StorageAccounting) {
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode full(setup().workload, setup().derived, config);
  std::uint64_t total = full.storage_bytes();
  std::uint64_t headers_only = 0;
  for (const BlockHeader& h : full.headers()) headers_only += h.serialized_size();
  EXPECT_GT(total, 20 * headers_only);  // bodies dominate
}

TEST(Session, EndToEndConvenience) {
  QuerySession session(setup(), ProtocolConfig{Design::kLvq, kGeom, 8});
  auto result = session.query(setup().workload->profiles[0].address);
  ASSERT_TRUE(result.outcome.ok);
  GroundTruth gt =
      scan_ground_truth(*setup().workload, setup().workload->profiles[0].address);
  EXPECT_EQ(result.outcome.history.total_txs(), gt.txs.size());
  EXPECT_EQ(result.outcome.history.balance(), gt.balance);
}

TEST(Session, RepeatedQueriesAreDeterministic) {
  QuerySession session(setup(), ProtocolConfig{Design::kLvq, kGeom, 8});
  const Address& addr = setup().workload->profiles[0].address;
  auto r1 = session.query(addr);
  auto r2 = session.query(addr);
  EXPECT_EQ(r1.response_bytes, r2.response_bytes);
  EXPECT_EQ(r1.breakdown.total(), r2.breakdown.total());
}

TEST(VerifiedHistory, BalanceEquation) {
  // Direct check of Eq. 1 on a hand-built history.
  Address me = Address::derive(str_bytes("me"));
  Address other = Address::derive(str_bytes("other"));
  VerifiedHistory h;
  h.address = me;
  VerifiedBlockTxs b1;
  b1.height = 1;
  Transaction t1;  // receive 5
  t1.outputs.push_back(TxOutput{me, 5 * kCoin});
  t1.outputs.push_back(TxOutput{other, 1 * kCoin});
  b1.txs.push_back(t1);
  VerifiedBlockTxs b2;
  b2.height = 2;
  Transaction t2;  // spend 2 of it
  t2.inputs.push_back(TxInput{{}, me, 5 * kCoin});
  t2.outputs.push_back(TxOutput{me, 3 * kCoin});
  t2.outputs.push_back(TxOutput{other, 2 * kCoin});
  b2.txs.push_back(t2);
  h.blocks = {b1, b2};
  EXPECT_EQ(h.balance(), 3 * kCoin);
  EXPECT_EQ(h.total_txs(), 2u);
}

}  // namespace
}  // namespace lvq
