// Verifier edge cases: configuration mismatches between client and
// server, FPM-path coverage assertions, and cross-parameter confusion.
#include <gtest/gtest.h>

#include <set>

#include "node/session.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 999;
    c.num_blocks = 64;
    c.background_txs_per_block = 10;
    c.profiles = {{"p", 10, 7}, {"ghost", 0, 0}};
    return make_setup(c);
  }();
  return s;
}

TEST(VerifierEdge, TightGeometryActuallyExercisesFpmPath) {
  // With a saturated 24-byte filter, the ghost address must hit FPM cases
  // — i.e. the response must carry SMT absence proofs, proving the
  // Challenge-2 machinery is genuinely on this code path (not just BF
  // successes everywhere).
  ProtocolConfig config{Design::kLvq, BloomGeometry{24, 4}, 16};
  FullNode full(setup().workload, setup().derived, config);
  QueryResponse resp = full.query(setup().workload->profiles[1].address);
  std::size_t absences = 0;
  for (const SegmentQueryProof& seg : resp.segments) {
    for (const auto& [height, proof] : seg.block_proofs) {
      if (proof.kind == BlockProof::Kind::kAbsent) absences++;
    }
  }
  EXPECT_GT(absences, 0u);

  LightNode light(config);
  light.set_headers(full.headers());
  EXPECT_TRUE(light.verify(setup().workload->profiles[1].address, resp).ok);
}

TEST(VerifierEdge, SegmentLengthMismatchRejected) {
  // Server proves with M=16; a client configured for M=32 derives a
  // different query forest and must reject the shape.
  ProtocolConfig server_config{Design::kLvq, BloomGeometry{256, 6}, 16};
  ProtocolConfig client_config{Design::kLvq, BloomGeometry{256, 6}, 32};
  FullNode full(setup().workload, setup().derived, server_config);
  QueryResponse resp = full.query(setup().workload->profiles[0].address);

  // The client's headers come from a chain built with ITS config — same
  // bodies, different commitments where M differs.
  FullNode client_view(setup().workload, setup().derived, client_config);
  LightNode light(client_config);
  light.set_headers(client_view.headers());
  VerifyOutcome out = light.verify(setup().workload->profiles[0].address, resp);
  EXPECT_FALSE(out.ok);
}

TEST(VerifierEdge, BloomGeometryMismatchRejected) {
  // Server built 128-byte filters; client expects 256-byte ones. At the
  // object level the endpoint geometry check must fire.
  ProtocolConfig server_config{Design::kLvq, BloomGeometry{128, 6}, 16};
  ProtocolConfig client_config{Design::kLvq, BloomGeometry{256, 6}, 16};
  FullNode full(setup().workload, setup().derived, server_config);
  QueryResponse resp = full.query(setup().workload->profiles[0].address);

  FullNode client_view(setup().workload, setup().derived, client_config);
  LightNode light(client_config);
  light.set_headers(client_view.headers());
  VerifyOutcome out = light.verify(setup().workload->profiles[0].address, resp);
  EXPECT_FALSE(out.ok);
}

TEST(VerifierEdge, TipHeightMismatchRejected) {
  ProtocolConfig config{Design::kLvq, BloomGeometry{256, 6}, 16};
  FullNode full(setup().workload, setup().derived, config);
  QueryResponse resp = full.query(setup().workload->profiles[0].address);
  resp.tip_height += 1;
  LightNode light(config);
  light.set_headers(full.headers());
  VerifyOutcome out = light.verify(setup().workload->profiles[0].address, resp);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kShapeMismatch);
}

TEST(VerifierEdge, EmptyHeaderSetRejected) {
  ProtocolConfig config{Design::kLvq, BloomGeometry{256, 6}, 16};
  FullNode full(setup().workload, setup().derived, config);
  QueryResponse resp = full.query(setup().workload->profiles[0].address);
  LightNode light(config);  // never synced
  VerifyOutcome out = light.verify(setup().workload->profiles[0].address, resp);
  EXPECT_FALSE(out.ok);
}

TEST(VerifierEdge, PositionTableAgreesWithFilters) {
  // check_fails (binary-searched positions) must equal a literal check
  // against the materialized filter for every block and many probes.
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 6}, 16};
  ChainContext ctx(setup().workload, setup().derived, config);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    BloomKey probe{rng.next_u64(), rng.next_u64() | 1};
    auto cbp = config.bloom.positions(probe);
    for (std::uint64_t h = 1; h <= ctx.tip_height(); ++h) {
      EXPECT_EQ(ctx.positions().check_fails(h, cbp),
                ctx.positions().block_bf(h).possibly_contains(probe))
          << "h=" << h;
    }
  }
}

TEST(VerifierEdge, EveryProfileQueryCoversEveryHeightExactlyOnce) {
  // Soundness bookkeeping: in a verified LVQ response, each height in
  // [1, tip] is covered either by an inexistent endpoint's subtree or by
  // exactly one block proof. We check the complement: the number of block
  // proofs equals the number of failed leaves, and no height repeats.
  ProtocolConfig config{Design::kLvq, BloomGeometry{64, 5}, 8};
  FullNode full(setup().workload, setup().derived, config);
  for (const AddressProfile& p : setup().workload->profiles) {
    QueryResponse resp = full.query(p.address);
    std::set<std::uint64_t> heights;
    for (const SegmentQueryProof& seg : resp.segments) {
      EndpointStats stats = seg.tree.endpoints();
      EXPECT_EQ(stats.failed_leaves, seg.block_proofs.size());
      for (const auto& [height, proof] : seg.block_proofs) {
        EXPECT_TRUE(heights.insert(height).second) << "duplicate " << height;
        EXPECT_GE(height, 1u);
        EXPECT_LE(height, resp.tip_height);
      }
    }
  }
}

}  // namespace
}  // namespace lvq
