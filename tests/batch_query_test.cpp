// Tests for the batch query extension: many addresses, one round trip.
#include <gtest/gtest.h>

#include "node/session.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 808;
    c.num_blocks = 48;
    c.background_txs_per_block = 8;
    c.profiles = {{"a", 6, 4}, {"b", 1, 1}, {"ghost", 0, 0}};
    return make_setup(c);
  }();
  return s;
}

constexpr BloomGeometry kGeom{256, 6};

struct Harness {
  FullNode full;
  LightNode light;
  LoopbackTransport transport;

  explicit Harness(const ProtocolConfig& config)
      : full(setup().workload, setup().derived, config),
        light(config),
        transport([this](ByteSpan req) { return full.handle_message(req); }) {
    light.sync_headers(transport);
  }
};

std::vector<Address> all_addresses() {
  std::vector<Address> out;
  for (const AddressProfile& p : setup().workload->profiles) {
    out.push_back(p.address);
  }
  return out;
}

TEST(BatchQuery, MatchesIndividualQueries) {
  Harness h(ProtocolConfig{Design::kLvq, kGeom, 16});
  auto addresses = all_addresses();
  auto batch = h.light.query_batch(h.transport, addresses);
  ASSERT_EQ(batch.size(), addresses.size());
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    ASSERT_TRUE(batch[i].outcome.ok) << i << ": " << batch[i].outcome.detail;
    auto single = h.light.query(h.transport, addresses[i]);
    ASSERT_TRUE(single.outcome.ok);
    EXPECT_EQ(batch[i].outcome.history.total_txs(),
              single.outcome.history.total_txs());
    EXPECT_EQ(batch[i].outcome.history.balance(),
              single.outcome.history.balance());
    EXPECT_EQ(batch[i].breakdown.total(), single.breakdown.total());
  }
}

TEST(BatchQuery, OneRoundTripOnly) {
  Harness h(ProtocolConfig{Design::kLvq, kGeom, 16});
  std::uint64_t sent_before = h.transport.bytes_sent();
  auto batch = h.light.query_batch(h.transport, all_addresses());
  // Exactly one request went out (its size equals the request_bytes of the
  // first entry and nothing else).
  EXPECT_EQ(h.transport.bytes_sent() - sent_before, batch[0].request_bytes);
  EXPECT_EQ(batch[1].request_bytes, 0u);
}

TEST(BatchQuery, PerAddressByteAttributionSumsToReply) {
  Harness h(ProtocolConfig{Design::kLvq, kGeom, 16});
  std::uint64_t recv_before = h.transport.bytes_received();
  auto batch = h.light.query_batch(h.transport, all_addresses());
  std::uint64_t total = 0;
  for (const auto& r : batch) total += r.response_bytes;
  EXPECT_EQ(total, h.transport.bytes_received() - recv_before);
}

TEST(BatchQuery, EmptyBatchIsNoop) {
  Harness h(ProtocolConfig{Design::kLvq, kGeom, 16});
  std::uint64_t sent_before = h.transport.bytes_sent();
  auto batch = h.light.query_batch(h.transport, {});
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(h.transport.bytes_sent(), sent_before);
}

TEST(BatchQuery, WorksAcrossDesigns) {
  for (Design d : {Design::kStrawmanVariant, Design::kLvqNoBmt,
                   Design::kLvqNoSmt, Design::kLvq}) {
    Harness h(ProtocolConfig{d, kGeom, 16});
    auto batch = h.light.query_batch(h.transport, all_addresses());
    for (const auto& r : batch) {
      EXPECT_TRUE(r.outcome.ok) << design_name(d) << ": " << r.outcome.detail;
    }
  }
}

TEST(BatchQuery, OversizedBatchRefused) {
  Harness h(ProtocolConfig{Design::kLvq, kGeom, 16});
  std::vector<Address> too_many(1001, all_addresses()[0]);
  auto batch = h.light.query_batch(h.transport, too_many);
  for (const auto& r : batch) {
    EXPECT_FALSE(r.outcome.ok);
    EXPECT_EQ(r.outcome.error, VerifyError::kBadEncoding);
  }
}

TEST(BatchQuery, GarbageReplyFailsAllEntries) {
  ProtocolConfig config{Design::kLvq, kGeom, 16};
  FullNode full(setup().workload, setup().derived, config);
  LightNode light(config);
  light.set_headers(full.headers());
  LoopbackTransport garbage([](ByteSpan) { return Bytes{0x08, 0x01}; });
  auto batch = light.query_batch(garbage, all_addresses());
  for (const auto& r : batch) {
    EXPECT_FALSE(r.outcome.ok);
  }
}

TEST(BatchQuery, TamperedEntryFailsOnlyThatAddress) {
  // A server that corrupts the SECOND response in the batch: entry 1 must
  // fail, entries 0 and 2 must still verify.
  ProtocolConfig config{Design::kLvq, kGeom, 16};
  FullNode full(setup().workload, setup().derived, config);
  auto addresses = all_addresses();

  LoopbackTransport cheat([&](ByteSpan req) {
    auto [type, payload] = decode_envelope(req);
    if (type != MsgType::kBatchQueryRequest) return full.handle_message(req);
    Writer w;
    w.varint(addresses.size());
    for (std::size_t i = 0; i < addresses.size(); ++i) {
      QueryResponse resp = full.query(addresses[i]);
      if (i == 1) {
        for (SegmentQueryProof& seg : resp.segments) {
          if (!seg.block_proofs.empty()) {
            seg.block_proofs.pop_back();  // hide a block proof
            break;
          }
        }
      }
      resp.serialize(w);
    }
    return encode_envelope(MsgType::kBatchQueryResponse,
                           ByteSpan{w.data().data(), w.data().size()});
  });

  LightNode light(config);
  light.set_headers(full.headers());
  auto batch = light.query_batch(cheat, addresses);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(batch[0].outcome.ok);
  EXPECT_FALSE(batch[1].outcome.ok);
  EXPECT_TRUE(batch[2].outcome.ok);
}

}  // namespace
}  // namespace lvq
