// Tests for the epoll reactor server's async-completion contract: pipelined
// in-order replies, write-buffer/global-budget backpressure, drain with no
// torn frames, and connections that die while a completion is in flight.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "net/message.hpp"
#include "net/reactor_server.hpp"
#include "net/tcp_transport.hpp"
#include "server/serving_engine.hpp"

namespace lvq {
namespace {

// ---------------------------------------------------------------------------
// Raw blocking client: pipelining needs control over exactly which bytes go
// into which syscall, which TcpTransport's round-trip API deliberately hides.
// ---------------------------------------------------------------------------

class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  int fd() const { return fd_; }

  void close_now() {
    ::close(fd_);
    fd_ = -1;
  }

  /// Close that emits RST instead of FIN: the connection dies in both
  /// directions at once, as a crashed client's would.
  void abort_now() {
    linger lg{1, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    close_now();
  }

  /// Sends every frame in one buffer — ideally one syscall, and in any
  /// case the server sees them back to back in its read buffer.
  void send_frames(const std::vector<Bytes>& payloads) {
    Bytes wire;
    for (const Bytes& p : payloads) {
      const std::uint32_t n = static_cast<std::uint32_t>(p.size());
      wire.push_back(static_cast<std::uint8_t>(n & 0xff));
      wire.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
      wire.push_back(static_cast<std::uint8_t>((n >> 16) & 0xff));
      wire.push_back(static_cast<std::uint8_t>((n >> 24) & 0xff));
      wire.insert(wire.end(), p.begin(), p.end());
    }
    send_all(wire);
  }

  void send_all(const Bytes& wire) {
    std::size_t off = 0;
    while (off < wire.size()) {
      ssize_t n = ::send(fd_, wire.data() + off, wire.size() - off,
                         MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Like send_frames for a single frame, but reports failure instead of
  /// failing the test — for tests where the server is expected to drop
  /// the connection at some point during the send loop.
  bool try_send_frame(const Bytes& payload) {
    Bytes wire;
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    wire.push_back(static_cast<std::uint8_t>(n & 0xff));
    wire.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
    wire.push_back(static_cast<std::uint8_t>((n >> 16) & 0xff));
    wire.push_back(static_cast<std::uint8_t>((n >> 24) & 0xff));
    wire.insert(wire.end(), payload.begin(), payload.end());
    std::size_t off = 0;
    while (off < wire.size()) {
      ssize_t sent = ::send(fd_, wire.data() + off, wire.size() - off,
                            MSG_NOSIGNAL);
      if (sent <= 0) return false;
      off += static_cast<std::size_t>(sent);
    }
    return true;
  }

  /// Reads one length-prefixed frame under a deadline; fails the test on
  /// timeout or EOF.
  Bytes read_frame(int timeout_ms = 5000) {
    Bytes header = read_exact(4, timeout_ms);
    if (header.size() != 4) return {};
    const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                              (static_cast<std::uint32_t>(header[1]) << 8) |
                              (static_cast<std::uint32_t>(header[2]) << 16) |
                              (static_cast<std::uint32_t>(header[3]) << 24);
    return read_exact(len, timeout_ms);
  }

  /// True if the peer half is closed (EOF) within the deadline.
  bool read_eof(int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      pollfd p{fd_, POLLIN, 0};
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0) return false;
      if (::poll(&p, 1, static_cast<int>(left)) <= 0) continue;
      std::uint8_t b;
      ssize_t n = ::recv(fd_, &b, 1, 0);
      if (n == 0) return true;
      if (n < 0) return true;  // RST counts as closed too
    }
  }

 private:
  Bytes read_exact(std::size_t want, int timeout_ms) {
    Bytes out;
    out.reserve(want);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (out.size() < want) {
      pollfd p{fd_, POLLIN, 0};
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0) {
        ADD_FAILURE() << "read_exact timed out with " << out.size() << "/"
                      << want << " bytes";
        return out;
      }
      int rc = ::poll(&p, 1, static_cast<int>(left));
      if (rc <= 0) continue;
      std::uint8_t buf[4096];
      ssize_t n = ::recv(fd_, buf, std::min(sizeof(buf), want - out.size()), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed mid-frame ("
                      << (n == 0 ? "EOF" : std::strerror(errno)) << ")";
        return out;
      }
      out.insert(out.end(), buf, buf + n);
    }
    return out;
  }

  int fd_ = -1;
};

Bytes make_payload(std::uint8_t tag, std::size_t len) {
  Bytes p(len, tag);
  if (!p.empty()) p[0] = tag;
  return p;
}

/// Event sink that counts everything, for assertions.
struct CountingEvents final : TcpServerEvents {
  std::atomic<int> slow_loris{0};
  std::atomic<int> drained{0};
  std::atomic<int> backpressure{0};
  void on_slow_loris_closed() override { slow_loris.fetch_add(1); }
  void on_drain_completed() override { drained.fetch_add(1); }
  void on_backpressure_shed() override { backpressure.fetch_add(1); }
};

// ---------------------------------------------------------------------------
// Pipelining
// ---------------------------------------------------------------------------

TEST(ReactorServer, PipelinedRequestsAnsweredInOrderDespiteReversedCompletion) {
  constexpr int kRequests = 16;
  // The handler parks every completion; once all requests of the pipeline
  // have arrived it completes them in REVERSE order — the hardest case for
  // the ordering guarantee.
  std::mutex mu;
  std::vector<std::pair<Bytes, ReactorServer::CompletionFn>> parked;
  ReactorServer server(
      [&](ConnId, ByteSpan req, ReactorServer::CompletionFn done) {
        std::vector<std::pair<Bytes, ReactorServer::CompletionFn>> release;
        {
          std::lock_guard<std::mutex> lock(mu);
          parked.emplace_back(Bytes(req.begin(), req.end()), std::move(done));
          if (parked.size() == kRequests) release.swap(parked);
        }
        for (auto it = release.rbegin(); it != release.rend(); ++it) {
          it->second(std::move(it->first));  // echo, reversed
        }
      });

  std::vector<Bytes> requests;
  for (int i = 0; i < kRequests; ++i) {
    requests.push_back(
        make_payload(static_cast<std::uint8_t>(i + 1), 64 + 17 * i));
  }
  RawClient client(server.port());
  client.send_frames(requests);  // all N requests in one write
  for (int i = 0; i < kRequests; ++i) {
    Bytes reply = client.read_frame();
    EXPECT_EQ(reply, requests[i]) << "reply " << i << " out of order";
  }
}

TEST(ReactorServer, PipelinedRepliesByteIdenticalToSequentialRoundTrips) {
  auto echo_stamp = [](ConnId, ByteSpan req,
                       ReactorServer::CompletionFn done) {
    Bytes out(req.begin(), req.end());
    out.push_back(0xEE);
    done(std::move(out));
  };
  ReactorServer pipelined(echo_stamp);
  ReactorServer sequential(echo_stamp);

  std::vector<Bytes> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(make_payload(static_cast<std::uint8_t>(i), 10 + i));
  }

  std::vector<Bytes> want;
  {
    TcpTransport one_at_a_time(sequential.port());
    for (const Bytes& r : requests) {
      want.push_back(one_at_a_time.round_trip(ByteSpan{r.data(), r.size()}));
    }
  }
  RawClient client(pipelined.port());
  client.send_frames(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(client.read_frame(), want[i]);
  }
}

// ---------------------------------------------------------------------------
// Backpressure
// ---------------------------------------------------------------------------

TEST(ReactorServer, SlowReaderShedsOnWriteCapWithoutStallingOthers) {
  constexpr std::size_t kReplyBytes = 16 * 1024;
  CountingEvents events;
  ReactorServerOptions opts;
  opts.conn_write_buffer_cap = 256 * 1024;
  opts.events = &events;
  ReactorServer server(
      [&](ConnId, ByteSpan req, ReactorServer::CompletionFn done) {
        done(make_payload(req.empty() ? 0 : req[0], kReplyBytes));
      },
      opts);

  // The slow reader requests 16 KiB replies one at a time and reads
  // NOTHING. Kernel socket buffers absorb the first few megabytes; once
  // they are full the un-flushed write queue crosses the 256 KiB cap and
  // further requests are shed with kBusy. The reply size is small
  // relative to the cap so the queue grows in fine steps through the
  // shed band even when a slow (sanitized) loop thread parses several
  // requests per batch. If the reader keeps pushing past 4x the cap the
  // server drops the connection — tolerate that with try_send_frame.
  RawClient slow(server.port());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (server.backpressure_sheds() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    if (!slow.try_send_frame(make_payload(1, 8))) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(server.backpressure_sheds(), 0u);
  EXPECT_GT(events.backpressure.load(), 0);

  // Meanwhile a well-behaved client on the same server gets full replies
  // promptly — the slow reader throttled itself, not the event loop.
  TcpTransport healthy(server.port());
  for (int i = 0; i < 3; ++i) {
    Bytes req = make_payload(7, 8);
    Bytes reply = healthy.round_trip(ByteSpan{req.data(), req.size()});
    ASSERT_EQ(reply.size(), kReplyBytes);
    EXPECT_EQ(reply[0], 7);
  }
}

TEST(ReactorServer, GlobalBudgetShedsBusyInPipelineOrder) {
  // Budget of one byte: the first request (parked in the handler) pins the
  // in-flight gauge above it, so the second pipelined request must come
  // back kBusy — but only AFTER the first reply, preserving order.
  std::mutex mu;
  std::condition_variable cv;
  ReactorServer::CompletionFn parked;
  ReactorServerOptions opts;
  opts.inflight_budget_bytes = 1;
  ReactorServer server(
      [&](ConnId, ByteSpan, ReactorServer::CompletionFn done) {
        std::lock_guard<std::mutex> lock(mu);
        parked = std::move(done);
        cv.notify_all();
      },
      opts);

  RawClient client(server.port());
  client.send_frames({make_payload(1, 100), make_payload(2, 100)});
  {
    // Wait until the first request reached the handler; the second is then
    // guaranteed to be over budget at dispatch.
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return static_cast<bool>(parked); }));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ReactorServer::CompletionFn release;
  {
    std::lock_guard<std::mutex> lock(mu);
    release = std::move(parked);
  }
  release(make_payload(0xAA, 3));

  Bytes first = client.read_frame();
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0], 0xAA);
  Bytes second = client.read_frame();
  EXPECT_TRUE(is_busy_envelope(ByteSpan{second.data(), second.size()}));
  EXPECT_GE(server.backpressure_sheds(), 1u);
}

// ---------------------------------------------------------------------------
// Drain: no torn frames on SIGTERM-style shutdown
// ---------------------------------------------------------------------------

TEST(ReactorServer, DrainFlushesInFlightReplyExactlyThenCloses) {
  constexpr std::size_t kReplyBytes = 1 << 20;
  CountingEvents events;
  std::mutex mu;
  std::condition_variable cv;
  ReactorServer::CompletionFn parked;
  ReactorServerOptions opts;
  opts.events = &events;
  ReactorServer server(
      [&](ConnId, ByteSpan, ReactorServer::CompletionFn done) {
        std::lock_guard<std::mutex> lock(mu);
        parked = std::move(done);
        cv.notify_all();
      },
      opts);

  RawClient client(server.port());
  client.send_frames({make_payload(5, 32)});
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return static_cast<bool>(parked); }));
  }

  // Drain begins while the request is in flight; the completion lands
  // mid-drain from another thread. The client must still receive the
  // byte-exact 1 MiB reply, then EOF — never a torn frame.
  std::thread completer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ReactorServer::CompletionFn done;
    {
      std::lock_guard<std::mutex> lock(mu);
      done = std::move(parked);
    }
    done(make_payload(9, kReplyBytes));
  });
  std::thread drainer([&] { server.drain(/*grace_ms=*/5000); });

  Bytes reply = client.read_frame(10'000);
  ASSERT_EQ(reply.size(), kReplyBytes);
  EXPECT_EQ(reply, make_payload(9, kReplyBytes));
  EXPECT_TRUE(client.read_eof());

  completer.join();
  drainer.join();
  EXPECT_EQ(events.drained.load(), 1);
  EXPECT_EQ(server.open_connections(), 0u);
}

// ---------------------------------------------------------------------------
// Connection death mid-completion
// ---------------------------------------------------------------------------

TEST(ReactorServer, ConnAbortMidCompletionDropsReplyWithoutDoubleClose) {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ReactorServer::CompletionFn> parked;
  ReactorServer server(
      [&](ConnId, ByteSpan, ReactorServer::CompletionFn done) {
        std::lock_guard<std::mutex> lock(mu);
        parked.push_back(std::move(done));
        cv.notify_all();
      });

  {
    RawClient doomed(server.port());
    doomed.send_frames({make_payload(1, 16)});
    {
      std::unique_lock<std::mutex> lock(mu);
      ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                              [&] { return parked.size() == 1; }));
    }
    doomed.abort_now();  // RST: dead both ways while the request is in flight
  }
  // Give the loop time to see the hangup and close the conn (recycling the
  // fd number for the next client is exactly the hazard under test).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.open_connections() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.open_connections(), 0u);

  // A new client connects — very likely onto the recycled fd number — and
  // THEN the stale completion fires. It must be dropped by ConnId lookup,
  // never written to (or close) the new connection.
  RawClient fresh(server.port());
  fresh.send_frames({make_payload(2, 16)});
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return parked.size() == 2; }));
  }
  std::vector<ReactorServer::CompletionFn> release;
  {
    std::lock_guard<std::mutex> lock(mu);
    release.swap(parked);
  }
  release[0](make_payload(0xDD, 8));  // stale: for the aborted conn
  release[1](make_payload(0xFF, 8));  // live: for the fresh conn
  Bytes reply = fresh.read_frame();
  ASSERT_EQ(reply.size(), 8u);
  EXPECT_EQ(reply[0], 0xFF) << "stale completion leaked onto a recycled fd";
}

TEST(ReactorServer, HalfCloseStillDeliversPendingReplies) {
  std::mutex mu;
  std::condition_variable cv;
  ReactorServer::CompletionFn parked;
  ReactorServer server(
      [&](ConnId, ByteSpan, ReactorServer::CompletionFn done) {
        std::lock_guard<std::mutex> lock(mu);
        parked = std::move(done);
        cv.notify_all();
      });

  RawClient client(server.port());
  client.send_frames({make_payload(3, 16)});
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return static_cast<bool>(parked); }));
  }
  // FIN the write side: the server sees EOF but still owes one reply.
  ::shutdown(client.fd(), SHUT_WR);
  ReactorServer::CompletionFn done;
  {
    std::lock_guard<std::mutex> lock(mu);
    done = std::move(parked);
  }
  done(make_payload(0x42, 24));
  Bytes reply = client.read_frame();
  ASSERT_EQ(reply.size(), 24u);
  EXPECT_EQ(reply[0], 0x42);
  EXPECT_TRUE(client.read_eof());
}

// ---------------------------------------------------------------------------
// ServingEngine::submit end to end
// ---------------------------------------------------------------------------

TEST(ReactorServer, EngineSubmitServesQueriesAndStats) {
  ServingEngineOptions eopts;
  eopts.workers = 2;
  ServingEngine engine(
      [](ByteSpan req) {
        Bytes out(req.begin(), req.end());
        out.push_back(0x77);
        return out;
      },
      eopts);
  ReactorServerOptions opts;
  opts.events = &engine.metrics();
  ReactorServer server(
      [&](ConnId conn, ByteSpan req, ReactorServer::CompletionFn done) {
        engine.submit(conn, req, std::move(done));
      },
      opts);

  TcpTransport client(server.port());
  Bytes req = make_payload(0x21, 12);
  Bytes reply = client.round_trip(ByteSpan{req.data(), req.size()});
  ASSERT_EQ(reply.size(), 13u);
  EXPECT_EQ(reply.back(), 0x77);

  // kStats is answered inline on the I/O thread and decodes as snapshot v3
  // with the request counted.
  Bytes stats_req = encode_envelope(MsgType::kStatsRequest, {});
  Bytes stats = client.round_trip(ByteSpan{stats_req.data(), stats_req.size()});
  ASSERT_FALSE(stats.empty());
  ASSERT_EQ(stats[0], static_cast<std::uint8_t>(MsgType::kStatsResponse));
  Reader r(ByteSpan{stats.data() + 1, stats.size() - 1});
  MetricsSnapshot snap = MetricsSnapshot::deserialize(r);
  EXPECT_GE(snap.requests_total, 2u);
  EXPECT_EQ(snap.latency_count,
            snap.class_latency[0].count + snap.class_latency[1].count +
                snap.class_latency[2].count);
  engine.stop();
}

}  // namespace
}  // namespace lvq
