// Golden regression pins.
//
// These values freeze the exact bytes of the whole stack — workload
// generation, txids, Merkle/SMT/BMT hash rules, header layout, proof
// serialization. Any unintended change to a hash rule, serialization
// order, or generator behaviour shows up here first, with a clear diff.
// (If you change the protocol ON PURPOSE, regenerate the constants and
// say so in the commit message.)
#include <gtest/gtest.h>

#include "core/multi_query.hpp"
#include "core/prover.hpp"
#include "core/range_query.hpp"
#include "node/session.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

const ExperimentSetup& golden_setup() {
  static ExperimentSetup setup = [] {
    WorkloadConfig c;
    c.seed = 123;
    c.num_blocks = 16;
    c.background_txs_per_block = 5;
    c.profiles = {{"p", 4, 3}};
    return make_setup(c);
  }();
  return setup;
}

const ChainContext& golden_context() {
  static ChainContext ctx(golden_setup().workload, golden_setup().derived,
                          ProtocolConfig{Design::kLvq, BloomGeometry{64, 4}, 8});
  return ctx;
}

const Workload& golden_workload() { return *golden_setup().workload; }

TEST(Golden, TipHeaderHash) {
  EXPECT_EQ(golden_context().chain().at_height(16).header.hash().hex(),
            "8d46ee844d588cc6da0876e46facbdc25820e8309441409652d8d7bd77ad552f");
}

TEST(Golden, BmtRoot) {
  EXPECT_EQ(golden_context().chain().at_height(16).header.bmt_root->hex(),
            "c7a48438937fc94b01ce73e181769950a1cf59c419fc7dc98fa4e5bd2c8ef0c1");
}

TEST(Golden, SmtCommitment) {
  EXPECT_EQ(
      golden_context().chain().at_height(16).header.smt_commitment->hex(),
      "2217791192f2ac28e1ba6dcbd66b2dda01e9c619c88a099492f6b31265f632f3");
}

TEST(Golden, MerkleRoot) {
  EXPECT_EQ(golden_context().chain().at_height(16).header.merkle_root.hex(),
            "7bb9d709bc8286edb4bc3b128dbe7b78b231a3bf96640a9a2ba2c23a1e4c8bde");
}

TEST(Golden, ProfileAddress) {
  EXPECT_EQ(golden_workload().profiles[0].address.to_string(),
            "1AKTzRjTq4TTETSR8mWrnP5MtFNZMDaRWr");
}

TEST(Golden, SerializedQueryResponse) {
  Writer w;
  build_query_response(golden_context(), golden_workload().profiles[0].address)
      .serialize(w);
  EXPECT_EQ(w.size(), 3108u);
  EXPECT_EQ(hash256d(ByteSpan{w.data().data(), w.data().size()}).hex(),
            "68144f069314fe4375e6d20be3d9a34de93d87b9f22a73d938fa911e3d3c82af");
}

TEST(Golden, SerializedRangeResponse) {
  Writer w;
  build_range_response(golden_context(), golden_workload().profiles[0].address,
                       3, 13)
      .serialize(w);
  EXPECT_EQ(w.size(), 2406u);
  EXPECT_EQ(hash256d(ByteSpan{w.data().data(), w.data().size()}).hex(),
            "9bba9b8eb66045f15e1b6f06331d50a31894e0bb245c56a86eb7e87108c0e799");
}

TEST(Golden, SerializedMultiResponse) {
  Writer w;
  Address ghost = Address::derive(str_bytes("golden-ghost"));
  build_multi_response(golden_context(),
                       {golden_workload().profiles[0].address, ghost})
      .serialize(w);
  EXPECT_EQ(w.size(), 3114u);
  EXPECT_EQ(hash256d(ByteSpan{w.data().data(), w.data().size()}).hex(),
            "12047d0914f50a735bd54b424ffe8974a7d6cb6861defdc59233e16c69d8410c");
}

}  // namespace
}  // namespace lvq
