// Tests for incremental header sync and on-disk chain persistence.
#include <gtest/gtest.h>

#include <cstdio>

#include "chain/chain_io.hpp"
#include "node/session.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

constexpr BloomGeometry kGeom{128, 5};

/// Builds two full nodes over the same workload truncated at two lengths,
/// modelling "the chain grew while the light node was offline".
struct GrowingChain {
  std::shared_ptr<const Workload> long_workload;
  ExperimentSetup short_setup, long_setup;

  GrowingChain(std::uint32_t short_tip, std::uint32_t long_tip) {
    WorkloadConfig c;
    c.seed = 2024;
    c.num_blocks = long_tip;
    c.background_txs_per_block = 6;
    c.profiles = {{"p", 8, 5}};
    long_workload = std::make_shared<const Workload>(generate_workload(c));

    auto shorter = std::make_shared<Workload>(*long_workload);
    shorter->blocks.resize(short_tip);
    short_setup.workload = shorter;
    short_setup.derived = std::make_shared<const WorkloadDerived>(*shorter);
    long_setup.workload = long_workload;
    long_setup.derived = std::make_shared<const WorkloadDerived>(*long_workload);
  }
};

TEST(IncrementalSync, CatchesUpAfterChainGrowth) {
  GrowingChain chains(20, 33);
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode old_node(chains.short_setup.workload, chains.short_setup.derived,
                    config);
  FullNode new_node(chains.long_setup.workload, chains.long_setup.derived,
                    config);

  LightNode light(config);
  LoopbackTransport to_old([&](ByteSpan r) { return old_node.handle_message(r); });
  LoopbackTransport to_new([&](ByteSpan r) { return new_node.handle_message(r); });

  ASSERT_TRUE(light.sync_headers(to_old));
  EXPECT_EQ(light.tip_height(), 20u);

  // Catch up: only 13 headers travel, not 33.
  std::uint64_t before = to_new.bytes_received();
  ASSERT_TRUE(light.sync_new_headers(to_new));
  EXPECT_EQ(light.tip_height(), 33u);
  std::uint64_t transferred = to_new.bytes_received() - before;
  EXPECT_LT(transferred, 14 * 150);  // ~13 headers, not a full re-sync

  // And the synced state is fully query-capable.
  auto result = light.query(to_new, chains.long_workload->profiles[0].address);
  ASSERT_TRUE(result.outcome.ok) << result.outcome.detail;
  GroundTruth gt =
      scan_ground_truth(*chains.long_workload, chains.long_workload->profiles[0].address);
  EXPECT_EQ(result.outcome.history.total_txs(), gt.txs.size());
}

TEST(IncrementalSync, NoopWhenAlreadyCurrent) {
  GrowingChain chains(20, 20);
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode node(chains.long_setup.workload, chains.long_setup.derived, config);
  LightNode light(config);
  LoopbackTransport t([&](ByteSpan r) { return node.handle_message(r); });
  ASSERT_TRUE(light.sync_headers(t));
  ASSERT_TRUE(light.sync_new_headers(t));
  EXPECT_EQ(light.tip_height(), 20u);
}

TEST(IncrementalSync, RejectsForeignChain) {
  // A peer on a different chain cannot splice its headers onto ours.
  GrowingChain ours(20, 26);
  WorkloadConfig other_config;
  other_config.seed = 777777;  // different chain entirely
  other_config.num_blocks = 26;
  other_config.background_txs_per_block = 6;
  other_config.profiles = {{"p", 8, 5}};
  ExperimentSetup other = make_setup(other_config);

  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode our_node(ours.short_setup.workload, ours.short_setup.derived, config);
  FullNode foreign_node(other.workload, other.derived, config);

  LightNode light(config);
  LoopbackTransport to_ours([&](ByteSpan r) { return our_node.handle_message(r); });
  LoopbackTransport to_foreign(
      [&](ByteSpan r) { return foreign_node.handle_message(r); });
  ASSERT_TRUE(light.sync_headers(to_ours));
  EXPECT_FALSE(light.sync_new_headers(to_foreign));
  EXPECT_EQ(light.tip_height(), 20u);  // unchanged
}

TEST(IncrementalSync, AppendHeadersValidatesLinkage) {
  GrowingChain chains(20, 24);
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode long_node(chains.long_setup.workload, chains.long_setup.derived,
                     config);
  auto all = long_node.headers();

  LightNode light(config);
  light.set_headers({all.begin(), all.begin() + 20});
  // Skipping a header breaks linkage.
  EXPECT_THROW(light.append_headers({all.begin() + 21, all.end()}),
               std::logic_error);
  // The contiguous suffix appends fine.
  light.append_headers({all.begin() + 20, all.end()});
  EXPECT_EQ(light.tip_height(), 24u);
}

class ChainIoTest : public ::testing::Test {
 protected:
  std::string path() const {
    return testing::TempDir() + "lvq_chain_" +
           testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".dat";
  }

  ChainStore make_chain(std::uint32_t blocks) {
    WorkloadConfig c;
    c.seed = 9;
    c.num_blocks = blocks;
    c.background_txs_per_block = 5;
    c.profiles = {{"p", 4, 3}};
    ExperimentSetup s = make_setup(c);
    ChainContext ctx(s.workload, s.derived, ProtocolConfig{Design::kLvq, kGeom, 8});
    ChainStore copy;
    for (const auto& b : ctx.chain().blocks()) copy.append(b);
    return copy;
  }
};

TEST_F(ChainIoTest, RoundTripPreservesEveryBlock) {
  ChainStore chain = make_chain(12);
  save_chain(chain, path());
  ChainStore loaded = load_chain(path());
  ASSERT_EQ(loaded.tip_height(), chain.tip_height());
  for (std::uint64_t h = 1; h <= chain.tip_height(); ++h) {
    EXPECT_EQ(loaded.at_height(h).header.hash(),
              chain.at_height(h).header.hash());
    EXPECT_EQ(loaded.at_height(h).txs.size(), chain.at_height(h).txs.size());
  }
  std::remove(path().c_str());
}

TEST_F(ChainIoTest, MissingFileThrows) {
  EXPECT_THROW(load_chain(testing::TempDir() + "does_not_exist.dat"),
               SerializeError);
}

TEST_F(ChainIoTest, BadMagicRejected) {
  ChainStore chain = make_chain(3);
  save_chain(chain, path());
  {
    std::FILE* f = std::fopen(path().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc('X', f);
    std::fclose(f);
  }
  EXPECT_THROW(load_chain(path()), SerializeError);
  std::remove(path().c_str());
}

TEST_F(ChainIoTest, TruncationRejected) {
  ChainStore chain = make_chain(3);
  save_chain(chain, path());
  // Truncate the file by one byte.
  std::FILE* f = std::fopen(path().c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes data(static_cast<std::size_t>(size));
  ASSERT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
  data.pop_back();
  f = std::fopen(path().c_str(), "wb");
  ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);

  EXPECT_THROW(load_chain(path()), SerializeError);
  std::remove(path().c_str());
}

TEST_F(ChainIoTest, TrailingGarbageRejected) {
  ChainStore chain = make_chain(3);
  save_chain(chain, path());
  std::FILE* f = std::fopen(path().c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputc(0x00, f);
  std::fclose(f);
  EXPECT_THROW(load_chain(path()), SerializeError);
  std::remove(path().c_str());
}

TEST_F(ChainIoTest, TamperedBlockBreaksLinkage) {
  ChainStore chain = make_chain(4);
  save_chain(chain, path());
  // Flip a byte in the middle of the file (inside some block body); either
  // decoding fails or the prev-hash chain breaks — both must throw.
  std::FILE* f = std::fopen(path().c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);
  EXPECT_THROW(load_chain(path()), SerializeError);
  std::remove(path().c_str());
}

}  // namespace
}  // namespace lvq
