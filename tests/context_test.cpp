// Integration tests for chain assembly: header commitments across schemes,
// per-block BMT roots against the naive per-block construction, position
// tables, and incremental chain growth (headers are append-only).
#include <gtest/gtest.h>

#include "core/chain_context.hpp"
#include "core/merge_schedule.hpp"
#include "node/session.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

ExperimentSetup make_small_setup(std::uint32_t blocks, std::uint64_t seed) {
  WorkloadConfig c;
  c.seed = seed;
  c.num_blocks = blocks;
  c.background_txs_per_block = 6;
  c.profiles = {{"p", 8, 5}};
  return make_setup(c);
}

constexpr BloomGeometry kGeom{128, 5};

TEST(ChainContext, HeaderChainLinksAndScheme) {
  ExperimentSetup s = make_small_setup(24, 1);
  ChainContext ctx(s.workload, s.derived, ProtocolConfig{Design::kLvq, kGeom, 8});
  auto headers = ctx.headers();
  ASSERT_EQ(headers.size(), 24u);
  Hash256 prev{};
  for (const BlockHeader& h : headers) {
    EXPECT_EQ(h.prev_hash, prev);
    EXPECT_EQ(h.scheme, HeaderScheme::kLvq);
    ASSERT_TRUE(h.bmt_root.has_value());
    ASSERT_TRUE(h.smt_commitment.has_value());
    prev = h.hash();
  }
}

TEST(ChainContext, MerkleRootsMatchBlocks) {
  ExperimentSetup s = make_small_setup(12, 2);
  ChainContext ctx(s.workload, s.derived,
                   ProtocolConfig{Design::kStrawmanVariant, kGeom, 8});
  for (std::uint64_t h = 1; h <= 12; ++h) {
    EXPECT_EQ(ctx.chain().at_height(h).header.merkle_root,
              ctx.chain().at_height(h).compute_merkle_root());
  }
}

TEST(ChainContext, SmtCommitmentsMatchBlockAddressCounts) {
  ExperimentSetup s = make_small_setup(12, 3);
  ChainContext ctx(s.workload, s.derived, ProtocolConfig{Design::kLvq, kGeom, 8});
  for (std::uint64_t h = 1; h <= 12; ++h) {
    SortedMerkleTree smt(ctx.chain().at_height(h).address_counts());
    EXPECT_EQ(*ctx.chain().at_height(h).header.smt_commitment,
              smt.commitment());
  }
}

TEST(ChainContext, BfHashCommitmentsMatchMaterializedFilters) {
  ExperimentSetup s = make_small_setup(12, 4);
  ChainContext ctx(s.workload, s.derived,
                   ProtocolConfig{Design::kStrawmanVariant, kGeom, 8});
  for (std::uint64_t h = 1; h <= 12; ++h) {
    EXPECT_EQ(*ctx.chain().at_height(h).header.bf_hash,
              ctx.positions().block_bf(h).content_hash());
  }
}

TEST(ChainContext, EmbeddedBfsContainEveryBlockAddress) {
  ExperimentSetup s = make_small_setup(12, 5);
  ChainContext ctx(s.workload, s.derived,
                   ProtocolConfig{Design::kStrawman, kGeom, 8});
  for (std::uint64_t h = 1; h <= 12; ++h) {
    const Block& block = ctx.chain().at_height(h);
    const BloomFilter& bf = *block.header.embedded_bf;
    for (const SmtLeaf& leaf : block.address_counts()) {
      EXPECT_TRUE(
          bf.possibly_contains(BloomKey::from_bytes(leaf.address.span())));
    }
  }
}

TEST(ChainContext, BmtRootsMatchNaivePerBlockConstruction) {
  // Cross-module check: header.bmt_root of every block equals the paper's
  // direct per-block BMT over blocks [h - merge_count + 1, h].
  ExperimentSetup s = make_small_setup(20, 6);
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  ChainContext ctx(s.workload, s.derived, config);

  auto leaf_bf = [&](std::uint64_t h) {
    return ctx.positions().block_bf(h);
  };
  // Recursive naive build over inclusive [lo, hi].
  std::function<std::pair<Hash256, BloomFilter>(std::uint64_t, std::uint64_t)>
      naive = [&](std::uint64_t lo,
                  std::uint64_t hi) -> std::pair<Hash256, BloomFilter> {
    if (lo == hi) {
      BloomFilter bf = leaf_bf(lo);
      return {bmt_leaf_hash(bf), bf};
    }
    std::uint64_t half = (hi - lo + 1) / 2;
    auto l = naive(lo, lo + half - 1);
    auto r = naive(lo + half, hi);
    BloomFilter bf = l.second;
    bf.merge(r.second);
    return {bmt_node_hash(l.first, r.first, bf), bf};
  };

  for (std::uint64_t h = 1; h <= 20; ++h) {
    std::uint32_t mc = merge_count(h, config.segment_length);
    EXPECT_EQ(*ctx.chain().at_height(h).header.bmt_root,
              naive(h - mc + 1, h).first)
        << "height " << h;
  }
}

TEST(ChainContext, PositionTableMatchesBruteForceBf) {
  ExperimentSetup s = make_small_setup(8, 7);
  ChainContext ctx(s.workload, s.derived, ProtocolConfig{Design::kLvq, kGeom, 8});
  for (std::uint64_t h = 1; h <= 8; ++h) {
    BloomFilter direct(kGeom);
    for (const BloomKey& key : s.derived->at(h).bloom_keys) {
      direct.insert(key);
    }
    EXPECT_EQ(ctx.positions().block_bf(h), direct);
  }
}

TEST(ChainContext, HeadersAreAppendOnlyAsChainGrows) {
  // A block's header (including its BMT root) must not change when new
  // blocks arrive — otherwise light nodes would re-download headers. Build
  // the same workload truncated at two lengths and compare the prefix.
  WorkloadConfig base;
  base.seed = 99;
  base.num_blocks = 23;
  base.background_txs_per_block = 6;
  base.profiles = {{"p", 6, 4}};
  Workload w_long = generate_workload(base);

  // Truncate: same blocks, shorter chain.
  auto w_short = std::make_shared<Workload>(w_long);
  w_short->blocks.resize(17);
  auto w_long_ptr = std::make_shared<const Workload>(std::move(w_long));
  auto d_short = std::make_shared<const WorkloadDerived>(*w_short);
  auto d_long = std::make_shared<const WorkloadDerived>(*w_long_ptr);

  ProtocolConfig config{Design::kLvq, kGeom, 8};
  ChainContext short_ctx(std::shared_ptr<const Workload>(w_short), d_short,
                         config);
  ChainContext long_ctx(w_long_ptr, d_long, config);

  for (std::uint64_t h = 1; h <= 17; ++h) {
    EXPECT_EQ(short_ctx.chain().at_height(h).header.hash(),
              long_ctx.chain().at_height(h).header.hash())
        << "height " << h;
  }
}

TEST(ChainContext, QueriesVerifyAfterChainGrowth) {
  // Same truncation setup, but run the full query path at both lengths.
  WorkloadConfig base;
  base.seed = 77;
  base.num_blocks = 29;
  base.background_txs_per_block = 6;
  base.profiles = {{"p", 10, 7}};
  auto workload = std::make_shared<const Workload>(generate_workload(base));
  const Address& addr = workload->profiles[0].address;

  for (std::size_t cut : {13u, 16u, 29u}) {
    auto truncated = std::make_shared<Workload>(*workload);
    truncated->blocks.resize(cut);
    ExperimentSetup s;
    s.workload = truncated;
    s.derived = std::make_shared<const WorkloadDerived>(*truncated);
    QuerySession session(s, ProtocolConfig{Design::kLvq, kGeom, 8});
    auto result = session.query(addr);
    EXPECT_TRUE(result.outcome.ok)
        << "tip " << cut << ": " << result.outcome.detail;
  }
}

TEST(ChainContext, RejectsNonPowerOfTwoSegmentLength) {
  ExperimentSetup s = make_small_setup(8, 8);
  EXPECT_THROW(ChainContext(s.workload, s.derived,
                            ProtocolConfig{Design::kLvq, kGeom, 6}),
               std::logic_error);
}

}  // namespace
}  // namespace lvq
