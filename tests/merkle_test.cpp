// Tests for the Bitcoin-style Merkle tree and branches (paper §II-A).
#include <gtest/gtest.h>

#include "crypto/hash.hpp"
#include "merkle/merkle_tree.hpp"
#include "util/rng.hpp"

namespace lvq {
namespace {

Hash256 h(std::uint64_t v) {
  Writer w;
  w.u64(v);
  return hash256d(ByteSpan{w.data().data(), w.data().size()});
}

std::vector<Hash256> leaves(std::size_t n, std::uint64_t salt = 0) {
  std::vector<Hash256> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(h(salt * 1000 + i));
  return out;
}

TEST(MerkleTree, SingleLeafRootIsLeaf) {
  auto l = leaves(1);
  EXPECT_EQ(MerkleTree::compute_root(l), l[0]);
}

TEST(MerkleTree, TwoLeafRoot) {
  auto l = leaves(2);
  EXPECT_EQ(MerkleTree::compute_root(l), merkle_parent(l[0], l[1]));
}

TEST(MerkleTree, OddCountDuplicatesLast) {
  // Bitcoin rule: a trailing unpaired node pairs with itself.
  auto l = leaves(3);
  Hash256 expect = merkle_parent(merkle_parent(l[0], l[1]),
                                 merkle_parent(l[2], l[2]));
  EXPECT_EQ(MerkleTree::compute_root(l), expect);
}

TEST(MerkleTree, BuiltTreeMatchesStaticRoot) {
  for (std::size_t n : {1, 2, 3, 4, 5, 7, 8, 9, 100}) {
    auto l = leaves(n, n);
    MerkleTree tree(l);
    EXPECT_EQ(tree.root(), MerkleTree::compute_root(l)) << n;
    EXPECT_EQ(tree.leaf_count(), n);
  }
}

TEST(MerkleTree, RootDependsOnOrder) {
  auto l = leaves(4);
  auto swapped = l;
  std::swap(swapped[1], swapped[2]);
  EXPECT_NE(MerkleTree::compute_root(l), MerkleTree::compute_root(swapped));
}

class MerkleBranchSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleBranchSweep, EveryBranchVerifies) {
  std::size_t n = GetParam();
  auto l = leaves(n, 7);
  MerkleTree tree(l);
  for (std::uint32_t i = 0; i < n; ++i) {
    MerkleBranch b = tree.branch(i);
    EXPECT_EQ(b.leaf, l[i]);
    EXPECT_EQ(b.index, i);
    EXPECT_EQ(b.compute_root(), tree.root()) << "leaf " << i << " of " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleBranchSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16,
                                           17, 33, 64, 111));

TEST(MerkleBranch, TamperedLeafFails) {
  auto l = leaves(8);
  MerkleTree tree(l);
  MerkleBranch b = tree.branch(3);
  b.leaf.bytes[0] ^= 1;
  EXPECT_NE(b.compute_root(), tree.root());
}

TEST(MerkleBranch, TamperedSiblingFails) {
  auto l = leaves(8);
  MerkleTree tree(l);
  MerkleBranch b = tree.branch(3);
  b.siblings[1].bytes[5] ^= 1;
  EXPECT_NE(b.compute_root(), tree.root());
}

TEST(MerkleBranch, WrongIndexFails) {
  auto l = leaves(8);
  MerkleTree tree(l);
  MerkleBranch b = tree.branch(3);
  b.index = 5;
  EXPECT_NE(b.compute_root(), tree.root());
}

TEST(MerkleBranch, SerializeRoundTrip) {
  auto l = leaves(13);
  MerkleTree tree(l);
  MerkleBranch b = tree.branch(9);
  Writer w;
  b.serialize(w);
  EXPECT_EQ(w.size(), b.serialized_size());
  Reader r(ByteSpan{w.data().data(), w.data().size()});
  MerkleBranch back = MerkleBranch::deserialize(r);
  EXPECT_EQ(back.leaf, b.leaf);
  EXPECT_EQ(back.index, b.index);
  EXPECT_EQ(back.siblings, b.siblings);
  EXPECT_EQ(back.compute_root(), tree.root());
}

TEST(MerkleBranch, DeserializeRejectsAbsurdDepth) {
  Writer w;
  Hash256 x;
  w.raw(x.bytes);
  w.u32(0);
  w.varint(100);  // deeper than any 2^64 tree
  Reader r(ByteSpan{w.data().data(), w.data().size()});
  EXPECT_THROW(MerkleBranch::deserialize(r), SerializeError);
}

TEST(MerkleTree, EmptyLeavesRejected) {
  EXPECT_THROW(MerkleTree::compute_root({}), std::logic_error);
}

}  // namespace
}  // namespace lvq
