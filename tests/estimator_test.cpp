// The size-only pipeline must agree byte-for-byte with the real prover's
// serialized responses, per category, across every design and address.
#include <gtest/gtest.h>

#include "core/size_estimator.hpp"
#include "node/session.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 555;
    c.num_blocks = 90;  // not a power of two: exercises sub-segments
    c.background_txs_per_block = 9;
    c.profiles = {
        {"none", 0, 0}, {"one", 1, 1}, {"mid", 14, 9}, {"busy", 60, 33}};
    return make_setup(c);
  }();
  return s;
}

struct Param {
  Design design;
  BloomGeometry bloom;
  std::uint32_t m;
};

class EstimatorSweep : public ::testing::TestWithParam<Param> {};

TEST_P(EstimatorSweep, MatchesRealResponseExactly) {
  const Param& param = GetParam();
  ProtocolConfig config{param.design, param.bloom, param.m};
  ChainContext ctx(setup().workload, setup().derived, config);
  for (const AddressProfile& p : setup().workload->profiles) {
    QueryResponse real = build_query_response(ctx, p.address);
    Writer w;
    real.serialize(w);
    SizeBreakdown actual = real.breakdown();
    SizeBreakdown estimated = estimate_response_size(ctx, p.address);

    EXPECT_EQ(estimated.total(), w.size()) << p.label;
    EXPECT_EQ(estimated.bmt_bytes, actual.bmt_bytes) << p.label;
    EXPECT_EQ(estimated.bf_bytes, actual.bf_bytes) << p.label;
    EXPECT_EQ(estimated.smt_bytes, actual.smt_bytes) << p.label;
    EXPECT_EQ(estimated.mt_bytes, actual.mt_bytes) << p.label;
    EXPECT_EQ(estimated.tx_bytes, actual.tx_bytes) << p.label;
    EXPECT_EQ(estimated.block_bytes, actual.block_bytes) << p.label;
    EXPECT_EQ(estimated.other_bytes, actual.other_bytes) << p.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndGeometries, EstimatorSweep,
    ::testing::Values(Param{Design::kLvq, BloomGeometry{512, 8}, 16},
                      Param{Design::kLvq, BloomGeometry{24, 4}, 16},
                      Param{Design::kLvq, BloomGeometry{512, 8}, 1},
                      Param{Design::kLvq, BloomGeometry{256, 10}, 64},
                      Param{Design::kLvqNoSmt, BloomGeometry{512, 8}, 16},
                      Param{Design::kLvqNoSmt, BloomGeometry{24, 4}, 16},
                      Param{Design::kLvqNoBmt, BloomGeometry{512, 8}, 16},
                      Param{Design::kLvqNoBmt, BloomGeometry{24, 4}, 16},
                      Param{Design::kStrawmanVariant, BloomGeometry{512, 8}, 16},
                      Param{Design::kStrawmanVariant, BloomGeometry{24, 4}, 16},
                      Param{Design::kStrawman, BloomGeometry{256, 6}, 16}));

}  // namespace
}  // namespace lvq
