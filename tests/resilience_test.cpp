// Server-side resilience: deadline propagation end to end (RetryTransport
// budget -> kDeadline wrapper -> queue expiry / mid-assembly abort ->
// kExpired), priority-aware overload shedding, the TcpServer slow-loris
// guard and SIGTERM drain path, and the deterministic chaos soak — every
// query that completes under injected faults must be byte-identical to a
// fault-free run. The ChaosSoak suite is re-run with LVQ_CHAOS_SOAK_MS
// raised in the sanitizer CI jobs.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "net/retry_transport.hpp"
#include "net/reactor_server.hpp"
#include "net/tcp_transport.hpp"
#include "node/session.hpp"
#include "server/chaos_server.hpp"
#include "server/metrics.hpp"
#include "server/serving_engine.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 1207;
    c.num_blocks = 32;
    c.background_txs_per_block = 8;
    c.profiles = {{"busy", 12, 8}, {"rare", 2, 2}, {"ghost", 0, 0}};
    return make_setup(c);
  }();
  return s;
}

constexpr BloomGeometry kGeom{256, 6};
const ProtocolConfig kConfig{Design::kLvq, kGeom, 8};

Bytes span_copy(ByteSpan s) { return Bytes(s.begin(), s.end()); }

ByteSpan as_span(const Bytes& b) { return ByteSpan{b.data(), b.size()}; }

Bytes make_query_request(const Address& a) {
  Writer w;
  QueryRequest{a}.serialize(w);
  return encode_envelope(MsgType::kQueryRequest, as_span(w.data()));
}

std::uint32_t soak_ms() {
  if (const char* env = std::getenv("LVQ_CHAOS_SOAK_MS")) {
    return static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 400;
}

/// Inner transport that always times out, after a fixed per-attempt stall —
/// the shape of the worst case the total budget exists to bound.
class StallingTransport final : public Transport {
 public:
  explicit StallingTransport(std::uint32_t stall_ms) : stall_ms_(stall_ms) {}

  Bytes round_trip(ByteSpan request) override {
    return round_trip_within(request, 0);
  }

  Bytes round_trip_within(ByteSpan, std::uint32_t budget_ms) override {
    attempts_.fetch_add(1);
    std::uint32_t sleep_ms = stall_ms_;
    if (budget_ms != 0 && budget_ms < sleep_ms) sleep_ms = budget_ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    throw TransportError(TransportError::kTimeout, "stalled peer");
  }

  std::uint64_t attempts() const { return attempts_.load(); }

 private:
  std::uint32_t stall_ms_;
  std::atomic<std::uint64_t> attempts_{0};
};

// ---- satellite (a): total retry budget bounds worst-case latency ----

TEST(RetryBudget, TotalBudgetClampsWorstCaseLatency) {
  // Without a budget this policy would burn ~ max_attempts x stall plus
  // ~2.5 s of backoff; the budget must cap the whole round trip near
  // total_budget_ms regardless.
  StallingTransport inner(40);
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_ms = 20;
  policy.max_backoff_ms = 100;
  policy.total_budget_ms = 150;
  RetryTransport retrier(inner, policy);

  Bytes req = {1, 2, 3};
  auto start = std::chrono::steady_clock::now();
  try {
    retrier.round_trip(as_span(req));
    FAIL() << "expected TransportError once the budget is spent";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kTimeout);
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  // Generous ceiling for sanitizer runners — the point is that 50 attempts
  // x 40 ms stalls plus exponential backoff collapsed to ~the budget.
  EXPECT_LT(elapsed.count(), 1'500);
  EXPECT_LT(inner.attempts(), 50u);
  EXPECT_GE(inner.attempts(), 1u);
}

TEST(RetryBudget, PropagatesShrinkingDeadlineWrapper) {
  // Two busy replies force retries; every attempt must arrive wrapped in a
  // kDeadline envelope whose remaining budget only shrinks.
  std::mutex mu;
  std::vector<std::uint64_t> budgets;
  std::vector<Bytes> inners;
  int calls = 0;
  LoopbackTransport inner([&](ByteSpan req) -> Bytes {
    std::uint64_t budget = 0;
    ByteSpan peeled = peel_deadline_envelope(req, &budget);
    std::lock_guard<std::mutex> lock(mu);
    budgets.push_back(budget);
    inners.push_back(span_copy(peeled));
    if (++calls <= 2) return encode_envelope(MsgType::kBusy, {});
    return span_copy(peeled);
  });

  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 15;
  policy.max_backoff_ms = 30;
  policy.total_budget_ms = 2'000;
  RetryTransport retrier(inner, policy);

  Bytes req = {9, 8, 7};
  EXPECT_EQ(retrier.round_trip(as_span(req)), req);
  ASSERT_EQ(budgets.size(), 3u);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    EXPECT_GT(budgets[i], 0u) << "attempt " << i << " arrived unwrapped";
    EXPECT_LE(budgets[i], policy.total_budget_ms);
    EXPECT_EQ(inners[i], req);
    // The backoff sleeps between attempts make the budget strictly shrink.
    if (i > 0) {
      EXPECT_LT(budgets[i], budgets[i - 1]);
    }
  }
  EXPECT_EQ(retrier.busy_rejections(), 2u);
}

TEST(RetryBudget, ExpiredReplySurfacesTypedError) {
  // A peer that always reports the deadline as already passed: retries are
  // allowed (another attempt may carry enough budget), but exhaustion must
  // surface the typed kExpired error, not a raw envelope.
  LoopbackTransport inner(
      [](ByteSpan) { return encode_envelope(MsgType::kExpired, {}); });
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  policy.total_budget_ms = 5'000;
  RetryTransport retrier(inner, policy);
  Bytes req = {4};
  try {
    retrier.round_trip(as_span(req));
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kExpired);
  }
  EXPECT_EQ(retrier.expired_replies(), 3u);
}

// ---- tentpole: deadline propagation through the serving engine ----

TEST(Deadline, WrappedAndBareRequestsAreByteIdenticalAndShareCache) {
  FullNode full(setup().workload, setup().derived, kConfig);
  ServingEngineOptions opts;
  opts.workers = 2;
  opts.cache_admit_min_us = 0;  // tiny chain: admit everything
  ServingEngine engine(full, opts);

  const Address& addr = setup().workload->profiles[0].address;
  Bytes bare = make_query_request(addr);
  Bytes wrapped = encode_deadline_envelope(60'000, as_span(bare));
  Bytes direct = full.handle_message(as_span(bare));

  // Cache keys depend only on the inner request: the bare reply fills the
  // cache, the wrapped request hits it, and all three byte-match.
  EXPECT_EQ(engine.handle(as_span(bare)), direct);
  EXPECT_EQ(engine.handle(as_span(wrapped)), direct);
  EXPECT_EQ(engine.handle(as_span(wrapped)), direct);
  MetricsSnapshot snap = engine.snapshot();
  EXPECT_GE(snap.cache_hits, 2u);
  EXPECT_EQ(snap.expired_in_queue, 0u);
  EXPECT_EQ(snap.deadline_aborted, 0u);
}

TEST(Deadline, ExpiredInQueueIsDroppedAndCounted) {
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> entered{0};
  ServingEngineOptions opts;
  opts.workers = 1;
  opts.queue_depth = 1;
  opts.cache_bytes = 0;
  ServingEngine engine(
      [&](ByteSpan req) {
        entered.fetch_add(1);
        gate.wait();
        return span_copy(req);
      },
      opts);

  Bytes bare = {42, 7};
  // Pin the one worker, then queue a request whose 30 ms budget will be
  // long gone by the time the worker frees up.
  auto pinned = std::async(std::launch::async,
                           [&] { return engine.handle(as_span(bare)); });
  while (entered.load() == 0) std::this_thread::yield();
  Bytes wrapped = encode_deadline_envelope(30, as_span(bare));
  auto queued = std::async(std::launch::async,
                           [&] { return engine.handle(as_span(wrapped)); });
  while (engine.snapshot().queue_depth == 0) std::this_thread::yield();

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  release.set_value();

  EXPECT_EQ(pinned.get(), bare);
  Bytes reply = queued.get();
  EXPECT_TRUE(is_expired_envelope(as_span(reply)));
  MetricsSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.expired_in_queue, 1u);
  // The dequeued-but-dropped request never enters the latency histogram;
  // the long-standing accounting invariant must still hold.
  EXPECT_EQ(snap.rejected_busy + snap.expired_in_queue + snap.latency_count,
            snap.requests_total);
}

TEST(Deadline, TightBudgetNeverYieldsWrongBytes) {
  // With a 1 ms budget the engine may or may not make it — machine and
  // sanitizer dependent — but the reply is only ever the exact fault-free
  // bytes or kExpired, and every expiry is attributed to exactly one
  // counter (queue drop or mid-assembly abort).
  FullNode full(setup().workload, setup().derived, kConfig);
  ServingEngineOptions opts;
  opts.workers = 2;
  opts.cache_bytes = 0;
  ServingEngine engine(full, opts);

  std::uint64_t expired_seen = 0;
  std::uint64_t total = 0;
  for (int round = 0; round < 4; ++round) {
    for (const AddressProfile& p : setup().workload->profiles) {
      Bytes bare = make_query_request(p.address);
      Bytes direct = full.handle_message(as_span(bare));
      Bytes wrapped = encode_deadline_envelope(1, as_span(bare));
      Bytes reply = engine.handle(as_span(wrapped));
      ++total;
      if (is_expired_envelope(as_span(reply))) {
        ++expired_seen;
      } else {
        EXPECT_EQ(reply, direct) << "late reply must still be exact";
      }
    }
  }
  MetricsSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.expired_in_queue + snap.deadline_aborted, expired_seen);
  EXPECT_EQ(snap.requests_total, total);
}

// ---- tentpole: priority-aware degradation under queue pressure ----

TEST(Shedding, BulkShedsBeforeInteractiveUnderPressure) {
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> entered{0};
  ServingEngineOptions opts;
  opts.workers = 1;
  opts.queue_depth = 4;
  opts.cache_bytes = 0;
  opts.bulk_shed_fraction = 0.5;  // bulk is shed once 2 of 4 slots fill
  ServingEngine engine(
      [&](ByteSpan req) {
        entered.fetch_add(1);
        gate.wait();
        return span_copy(req);
      },
      opts);

  Bytes interactive = {static_cast<std::uint8_t>(MsgType::kQueryRequest), 1};
  Bytes bulk = {static_cast<std::uint8_t>(MsgType::kBatchQueryRequest), 1};

  auto pinned = std::async(std::launch::async, [&] {
    return engine.handle(as_span(interactive));
  });
  while (entered.load() == 0) std::this_thread::yield();

  std::vector<std::future<Bytes>> queued;
  for (int i = 0; i < 2; ++i) {
    queued.push_back(std::async(std::launch::async, [&] {
      return engine.handle(as_span(interactive));
    }));
  }
  while (engine.snapshot().queue_depth < 2) std::this_thread::yield();

  // Queue half full, no idle worker: bulk is degraded away...
  Bytes shed_bulk = engine.handle(as_span(bulk));
  EXPECT_TRUE(is_busy_envelope(as_span(shed_bulk)));
  // ...while interactive traffic still gets the remaining slots.
  for (int i = 0; i < 2; ++i) {
    queued.push_back(std::async(std::launch::async, [&] {
      return engine.handle(as_span(interactive));
    }));
  }
  while (engine.snapshot().queue_depth < 4) std::this_thread::yield();
  // Queue truly full: now even interactive requests shed.
  Bytes shed_any = engine.handle(as_span(interactive));
  EXPECT_TRUE(is_busy_envelope(as_span(shed_any)));

  release.set_value();
  EXPECT_EQ(pinned.get(), interactive);
  for (auto& f : queued) EXPECT_EQ(f.get(), interactive);

  MetricsSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.rejected_degraded, 1u);
  EXPECT_EQ(snap.rejected_busy, 2u);  // the degraded shed counts as busy too
  EXPECT_EQ(snap.rejected_busy + snap.latency_count, snap.requests_total);
}

// ---- tentpole: TcpServer slow-loris guard and drain path ----

TEST(TcpServerResilience, SlowLorisConnectionClosedAndCounted) {
  ServerMetrics metrics;
  TcpServerOptions sopts;
  sopts.frame_read_timeout_ms = 50;
  sopts.events = &metrics;
  TcpServer server(
      [](ByteSpan req) { return Bytes(req.begin(), req.end()); }, sopts);

  // A client that starts a frame and then trickles nothing: two bytes of
  // the four-byte length prefix, then silence.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::uint8_t partial[2] = {8, 0};
  ASSERT_EQ(::send(fd, partial, sizeof(partial), 0),
            static_cast<ssize_t>(sizeof(partial)));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  auto loris_count = [&] {
    MetricsSnapshot snap;
    metrics.fill(snap);
    return snap.slow_loris_closed;
  };
  while (loris_count() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(loris_count(), 1u);

  // The server actually dropped the connection, not just counted it.
  char buf[8];
  ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_LE(n, 0);
  ::close(fd);

  // A well-behaved client on a fresh connection is unaffected.
  TcpTransport ok(server.port());
  Bytes msg = {5, 6};
  EXPECT_EQ(ok.round_trip(as_span(msg)), msg);
}

TEST(TcpServerResilience, DrainCompletesInFlightFrameExactly) {
  ServerMetrics metrics;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> entered{0};
  TcpServerOptions sopts;
  sopts.events = &metrics;
  TcpServer server(
      [&](ByteSpan req) {
        entered.fetch_add(1);
        gate.wait();
        return Bytes(req.begin(), req.end());
      },
      sopts);
  const std::uint16_t port = server.port();

  // One request in flight when the drain starts; a large payload so a torn
  // write would be detectable as a short or mangled reply.
  Bytes msg(4096, 0);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  TcpTransport client(port);
  auto in_flight = std::async(std::launch::async,
                              [&] { return client.round_trip(as_span(msg)); });
  while (entered.load() == 0) std::this_thread::yield();

  std::thread drainer([&] { server.drain(10'000); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.set_value();

  // The in-flight request finishes its full frame — byte-exact, never torn.
  EXPECT_EQ(in_flight.get(), msg);
  drainer.join();
  MetricsSnapshot drained;
  metrics.fill(drained);
  EXPECT_GE(drained.drain_completed, 1u);

  // Post-drain the listener is gone: new connections are refused.
  TcpTransportOptions copts;
  copts.connect_timeout_ms = 500;
  copts.auto_reconnect = false;
  EXPECT_THROW(
      {
        TcpTransport late(port, copts);
        late.round_trip(as_span(msg));
      },
      TransportError);
}

// ---- satellite (b): the new counters travel through the snapshot wire ----

TEST(Metrics, SnapshotV2RoundTripsResilienceCounters) {
  MetricsSnapshot s;
  s.requests_total = 1000;
  s.rejected_busy = 40;
  s.rejected_degraded = 25;
  s.expired_in_queue = 9;
  s.deadline_aborted = 4;
  s.drain_completed = 3;
  s.slow_loris_closed = 2;
  s.latency_count = 951;
  s.latency_total_us = 123456;
  s.latency_buckets[5] = 951;

  Writer w;
  s.serialize(w);
  Reader r(as_span(w.data()));
  MetricsSnapshot back = MetricsSnapshot::deserialize(r);
  r.expect_done();
  EXPECT_EQ(s, back);
  EXPECT_EQ(back.rejected_degraded, 25u);
  EXPECT_EQ(back.expired_in_queue, 9u);
  EXPECT_EQ(back.deadline_aborted, 4u);
  EXPECT_EQ(back.drain_completed, 3u);
  EXPECT_EQ(back.slow_loris_closed, 2u);
  // The human rendering mentions the new failure families.
  std::string text = s.to_text();
  EXPECT_NE(text.find("shedding"), std::string::npos);
  EXPECT_NE(text.find("drain"), std::string::npos);
}

// ---- tentpole: deterministic chaos soak ----
//
// An engine serving a growing chain behind a ChaosServer that stalls
// workers, tears reply frames, drops connections, and storms kBusy.
// Retrying clients with total budgets hammer it across an append+rebind.
// Acceptance: every round trip that COMPLETES returns bytes identical to a
// fault-free reference for one of the published chain states.

struct SoakRecord {
  std::size_t addr_index;
  Bytes reply;
};

TEST(ChaosSoak, CompletedQueriesVerifyByteIdenticalAcrossAppend) {
  const auto& bodies = setup().workload->blocks;
  std::vector<std::vector<Transaction>> prefix(bodies.begin(),
                                               bodies.end() - 8);
  std::vector<std::vector<Transaction>> tail(bodies.end() - 8, bodies.end());

  ExperimentSetup s_old = make_setup_from_blocks(prefix);
  ExperimentSetup s_new = make_setup_from_blocks(bodies);
  FullNode ref_old(s_old.workload, s_old.derived, kConfig);
  FullNode ref_new(s_new.workload, s_new.derived, kConfig);

  std::vector<Bytes> requests, old_replies, new_replies;
  for (const AddressProfile& p : setup().workload->profiles) {
    requests.push_back(make_query_request(p.address));
    old_replies.push_back(ref_old.handle_message(as_span(requests.back())));
    new_replies.push_back(ref_new.handle_message(as_span(requests.back())));
  }

  FullNode live(s_old.workload, s_old.derived, kConfig);
  ServingEngineOptions eopts;
  eopts.workers = 2;
  eopts.queue_depth = 16;
  ServingEngine engine(live, eopts);

  ChaosPlan plan;
  // A scripted prefix guarantees every fault family fires at least once
  // even in the shortest CI run; after that, seeded probabilities.
  plan.script = {ChaosFault::kStall, ChaosFault::kTornWrite,
                 ChaosFault::kDisconnect, ChaosFault::kBusyStorm};
  plan.stall_prob = 0.05;
  plan.torn_write_prob = 0.08;
  plan.disconnect_prob = 0.08;
  plan.busy_storm_prob = 0.04;
  plan.stall_ms = 20;
  plan.busy_storm_len = 3;
  plan.seed = 20'260'808;
  ChaosServer chaos([&](ByteSpan req) { return engine.handle(req); }, plan);

  const std::uint32_t half = soak_ms() / 2;
  std::atomic<bool> stop{false};
  std::mutex mu;
  std::vector<SoakRecord> completed;
  std::atomic<std::uint64_t> transport_failures{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      TcpTransportOptions copts;
      copts.io_timeout_ms = 2'000;
      TcpTransport tcp(chaos.port(), copts);
      RetryPolicy policy;
      policy.max_attempts = 8;
      policy.initial_backoff_ms = 2;
      policy.max_backoff_ms = 20;
      policy.total_budget_ms = 2'000;
      policy.seed = 100 + static_cast<std::uint64_t>(c);
      RetryTransport retrier(tcp, policy);
      std::size_t i = static_cast<std::size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t a = i++ % requests.size();
        try {
          Bytes reply = retrier.round_trip(as_span(requests[a]));
          std::lock_guard<std::mutex> lock(mu);
          completed.push_back({a, std::move(reply)});
        } catch (const TransportError&) {
          // Budget spent or every retry lost to chaos: liveness cost only.
          transport_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(half));
  live.append_blocks(std::move(tail));
  engine.rebind();
  std::this_thread::sleep_for(std::chrono::milliseconds(half));
  stop.store(true);
  for (std::thread& t : clients) t.join();
  chaos.stop();

  ASSERT_GT(completed.size(), 0u);
  EXPECT_GE(chaos.requests_seen(), completed.size());
  EXPECT_GE(chaos.faults_injected(), plan.script.size());

  // Byte-exactness: every completed reply IS a fault-free reply for one of
  // the two published chain states. No torn, stale, or hybrid bytes.
  std::uint64_t mismatches = 0;
  std::uint64_t old_hits = 0, new_hits = 0;
  for (const SoakRecord& rec : completed) {
    if (rec.reply == old_replies[rec.addr_index]) {
      ++old_hits;
    } else if (rec.reply == new_replies[rec.addr_index]) {
      ++new_hits;
    } else {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
  EXPECT_GT(old_hits + new_hits, 0u);

  // And the settled state still verifies end to end on a light node.
  LightNode light(kConfig);
  light.set_headers(live.headers());
  for (std::size_t a = 0; a < requests.size(); ++a) {
    auto [type, payload] = decode_envelope(as_span(new_replies[a]));
    ASSERT_EQ(type, MsgType::kQueryResponse);
    Reader pr(payload);
    QueryResponse resp = QueryResponse::deserialize(pr, kConfig);
    EXPECT_TRUE(
        light.verify(setup().workload->profiles[a].address, resp).ok);
  }
}

// ---- satellite (c): SIGHUP-style incremental reloads racing queries ----
//
// `lvqtool serve` handles SIGHUP by appending the reloaded tail to the
// live node and rebinding the engine (refresh_from_file). This replays
// that sequence four times, two blocks per reload, while chaos-routed
// clients query throughout: every completed reply must be byte-exact for
// one of the five published tips. Runs under TSan in CI.
TEST(ChaosSoak, SighupStyleReloadRacesInFlightQueries) {
  const auto& bodies = setup().workload->blocks;
  constexpr std::size_t kBase = 24;
  constexpr std::size_t kReloads = 4;
  constexpr std::size_t kStep = 2;

  std::vector<ExperimentSetup> stage_setups;
  std::vector<std::unique_ptr<FullNode>> stage_refs;
  for (std::size_t k = 0; k <= kReloads; ++k) {
    std::vector<std::vector<Transaction>> blocks(
        bodies.begin(), bodies.begin() + (kBase + k * kStep));
    stage_setups.push_back(make_setup_from_blocks(std::move(blocks)));
    stage_refs.push_back(std::make_unique<FullNode>(
        stage_setups.back().workload, stage_setups.back().derived, kConfig));
  }

  std::vector<Bytes> requests;
  // stage_replies[k][a]: the fault-free reply at stage k for address a.
  std::vector<std::vector<Bytes>> stage_replies(kReloads + 1);
  for (const AddressProfile& p : setup().workload->profiles) {
    requests.push_back(make_query_request(p.address));
  }
  for (std::size_t k = 0; k <= kReloads; ++k) {
    for (const Bytes& req : requests) {
      stage_replies[k].push_back(
          stage_refs[k]->handle_message(as_span(req)));
    }
  }

  FullNode live(stage_setups[0].workload, stage_setups[0].derived, kConfig);
  ServingEngineOptions eopts;
  eopts.workers = 2;
  ServingEngine engine(live, eopts);

  ChaosPlan plan;
  plan.stall_prob = 0.05;
  plan.disconnect_prob = 0.1;
  plan.busy_storm_prob = 0.05;
  plan.stall_ms = 10;
  plan.busy_storm_len = 2;
  plan.seed = 77;
  ChaosServer chaos([&](ByteSpan req) { return engine.handle(req); }, plan);

  std::atomic<bool> stop{false};
  std::mutex mu;
  std::vector<SoakRecord> completed;
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      TcpTransportOptions copts;
      copts.io_timeout_ms = 2'000;
      TcpTransport tcp(chaos.port(), copts);
      RetryPolicy policy;
      policy.max_attempts = 6;
      policy.initial_backoff_ms = 1;
      policy.max_backoff_ms = 10;
      policy.total_budget_ms = 1'500;
      policy.seed = 7 + static_cast<std::uint64_t>(c);
      RetryTransport retrier(tcp, policy);
      std::size_t i = static_cast<std::size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t a = i++ % requests.size();
        try {
          Bytes reply = retrier.round_trip(as_span(requests[a]));
          std::lock_guard<std::mutex> lock(mu);
          completed.push_back({a, std::move(reply)});
        } catch (const TransportError&) {
        }
      }
    });
  }

  const std::uint32_t step_ms = std::max<std::uint32_t>(20, soak_ms() / 8);
  for (std::size_t k = 1; k <= kReloads; ++k) {
    std::this_thread::sleep_for(std::chrono::milliseconds(step_ms));
    // The refresh_from_file sequence: append the reloaded tail, rebind.
    std::vector<std::vector<Transaction>> reload_tail(
        bodies.begin() + (kBase + (k - 1) * kStep),
        bodies.begin() + (kBase + k * kStep));
    live.append_blocks(std::move(reload_tail));
    engine.rebind();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(step_ms));
  stop.store(true);
  for (std::thread& t : clients) t.join();
  chaos.stop();

  ASSERT_GT(completed.size(), 0u);
  EXPECT_EQ(live.tip_height(), kBase + kReloads * kStep);
  std::uint64_t mismatches = 0;
  for (const SoakRecord& rec : completed) {
    bool matched = false;
    for (std::size_t k = 0; k <= kReloads; ++k) {
      if (rec.reply == stage_replies[k][rec.addr_index]) {
        matched = true;
        break;
      }
    }
    if (!matched) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);
  // Settled: the engine now serves the final stage's exact bytes.
  for (std::size_t a = 0; a < requests.size(); ++a) {
    EXPECT_EQ(engine.handle(as_span(requests[a])),
              stage_replies[kReloads][a]);
  }
}

}  // namespace
}  // namespace lvq
