// Tests for Algorithm 1 (merge schedule, Table I) and the segment /
// sub-segment division (Eq. 5/6, Table II).
#include <gtest/gtest.h>

#include "core/merge_schedule.hpp"
#include "core/segments.hpp"

namespace lvq {
namespace {

TEST(MergeSchedule, PaperTable1) {
  // Table I uses a segment at least 8 long; reproduce it exactly.
  constexpr std::uint32_t kM = 8;
  struct Row {
    std::uint64_t height;
    std::uint32_t count;
    std::uint64_t first;
  };
  const Row rows[] = {
      {1, 1, 1}, {2, 2, 1}, {3, 1, 3}, {4, 4, 1},
      {5, 1, 5}, {6, 2, 5}, {7, 1, 7}, {8, 8, 1},
  };
  for (const Row& row : rows) {
    EXPECT_EQ(merge_count(row.height, kM), row.count) << "h=" << row.height;
    auto blocks = blocks_to_merge(row.height, kM);
    EXPECT_EQ(blocks.size(), row.count);
    EXPECT_EQ(blocks.front(), row.first);
    EXPECT_EQ(blocks.back(), row.height);
  }
}

TEST(MergeSchedule, OddHeightsMergeOnlyThemselves) {
  for (std::uint64_t h = 1; h <= 4097; h += 2) {
    EXPECT_EQ(merge_count(h, 4096), 1u) << h;
  }
}

TEST(MergeSchedule, SegmentEndMergesWholeSegment) {
  EXPECT_EQ(merge_count(4096, 4096), 4096u);
  EXPECT_EQ(merge_count(8192, 4096), 4096u);
  EXPECT_EQ(merge_count(256, 256), 256u);
}

TEST(MergeSchedule, CountIsPowerOfTwoDividingLocalIndex) {
  // Property from the paper: the count is the maximum power of two that
  // divides the height's position (and never crosses a segment boundary).
  for (std::uint32_t m : {1u, 2u, 8u, 64u, 256u, 4096u}) {
    for (std::uint64_t h = 1; h <= 3 * m + 5; ++h) {
      std::uint32_t mc = merge_count(h, m);
      EXPECT_TRUE(is_power_of_two(mc));
      EXPECT_LE(mc, m);
      std::uint64_t l = h % m == 0 ? m : h % m;
      EXPECT_EQ(l % mc, 0u);                          // divides position
      if (mc * 2 <= l) {
        EXPECT_NE(l % (mc * 2), 0u);  // and is maximal
      }
      // Merged range stays within one segment.
      std::uint64_t first = h - mc + 1;
      EXPECT_EQ((first - 1) / m, (h - 1) / m);
    }
  }
}

TEST(MergeSchedule, SegmentLengthOneAlwaysMergesSelf) {
  for (std::uint64_t h = 1; h < 20; ++h) EXPECT_EQ(merge_count(h, 1), 1u);
}

TEST(MergeSchedule, RejectsNonPowerOfTwoM) {
  EXPECT_THROW(merge_count(5, 6), std::logic_error);
  EXPECT_THROW(merge_count(5, 0), std::logic_error);
}

TEST(Segments, PaperTable2) {
  // M = 256, blocks indexed from 1. The paper shows the last segment's
  // sub-segments for tips 464, 465, 466.
  using V = std::vector<SubSegment>;
  EXPECT_EQ(split_last_segment(257, 464),
            (V{{257, 384}, {385, 448}, {449, 464}}));
  EXPECT_EQ(split_last_segment(257, 465),
            (V{{257, 384}, {385, 448}, {449, 464}, {465, 465}}));
  EXPECT_EQ(split_last_segment(257, 466),
            (V{{257, 384}, {385, 448}, {449, 464}, {465, 466}}));
}

TEST(Segments, ForestCoversChainExactly) {
  for (std::uint32_t m : {1u, 4u, 16u, 256u}) {
    for (std::uint64_t tip = 1; tip <= 600; tip += 7) {
      auto forest = query_forest(tip, m);
      std::uint64_t expect = 1;
      for (const SubSegment& s : forest) {
        EXPECT_EQ(s.first, expect);
        EXPECT_GE(s.last, s.first);
        EXPECT_TRUE(is_power_of_two(s.length()));
        EXPECT_LE(s.length(), m);
        expect = s.last + 1;
      }
      EXPECT_EQ(expect, tip + 1) << "tip=" << tip << " m=" << m;
    }
  }
}

TEST(Segments, EachTreeRootIsItsLastBlocksMergeRange) {
  // The invariant §V-B relies on: the last block of every forest entry
  // merges exactly that entry.
  for (std::uint32_t m : {4u, 64u, 4096u}) {
    for (std::uint64_t tip : {1ull, 3ull, 17ull, 100ull, 4096ull, 5000ull}) {
      for (const SubSegment& s : query_forest(tip, m)) {
        EXPECT_EQ(merge_count(s.last, m), s.length());
      }
    }
  }
}

TEST(Segments, CompleteChainIsWholeSegments) {
  auto forest = query_forest(8192, 4096);
  ASSERT_EQ(forest.size(), 2u);
  EXPECT_EQ(forest[0], (SubSegment{1, 4096}));
  EXPECT_EQ(forest[1], (SubSegment{4097, 8192}));
}

TEST(Segments, SegmentLengthOne) {
  auto forest = query_forest(5, 1);
  ASSERT_EQ(forest.size(), 5u);
  for (std::uint64_t h = 1; h <= 5; ++h) {
    EXPECT_EQ(forest[h - 1], (SubSegment{h, h}));
  }
}

TEST(Segments, SubSegmentLengthsDescend) {
  // High-to-low binary expansion ⇒ strictly decreasing lengths.
  auto subs = split_last_segment(1, 0b10110101);  // 181 blocks
  for (std::size_t i = 1; i < subs.size(); ++i) {
    EXPECT_GT(subs[i - 1].length(), subs[i].length());
  }
}

}  // namespace
}  // namespace lvq
