// Security tests: a malicious full node mutates responses in every way the
// paper's §VI argument says must be detectable — and one way it admits is
// NOT detectable without LVQ (Challenge 3), which we demonstrate.
#include <gtest/gtest.h>

#include "node/attack.hpp"
#include "node/session.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 4242;
    c.num_blocks = 64;
    c.background_txs_per_block = 10;
    c.profiles = {
        {"victim", 30, 18},  // multi-tx blocks exist (18 < 30)
        {"ghost", 0, 0},
    };
    return make_setup(c);
  }();
  return s;
}

constexpr BloomGeometry kRoomy{512, 6};
constexpr BloomGeometry kTight{24, 4};

struct Harness {
  ProtocolConfig config;
  FullNode full;
  LightNode light;

  explicit Harness(const ProtocolConfig& cfg)
      : config(cfg), full(setup().workload, setup().derived, cfg), light(cfg) {
    light.set_headers(full.headers());
  }

  VerifyOutcome run(const Address& addr, QueryResponse resp) const {
    return light.verify(addr, resp);
  }
};

const Address& victim() { return setup().workload->profiles[0].address; }
const Address& ghost() { return setup().workload->profiles[1].address; }

TEST(Adversarial, HonestBaselinePasses) {
  for (Design d : {Design::kStrawman, Design::kStrawmanVariant,
                   Design::kLvqNoBmt, Design::kLvqNoSmt, Design::kLvq}) {
    Harness h(ProtocolConfig{d, kRoomy, 16});
    EXPECT_TRUE(h.run(victim(), h.full.query(victim())).ok) << design_name(d);
  }
}

TEST(Adversarial, LvqDetectsOmittedTx) {
  Harness h(ProtocolConfig{Design::kLvq, kRoomy, 16});
  QueryResponse resp = h.full.query(victim());
  ASSERT_TRUE(attacks::omit_tx_from_existence(resp));
  VerifyOutcome out = h.run(victim(), resp);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kCountMismatch);
}

TEST(Adversarial, LvqNoBmtDetectsOmittedTx) {
  Harness h(ProtocolConfig{Design::kLvqNoBmt, kRoomy, 16});
  QueryResponse resp = h.full.query(victim());
  ASSERT_TRUE(attacks::omit_tx_from_existence(resp));
  EXPECT_EQ(h.run(victim(), resp).error, VerifyError::kCountMismatch);
}

TEST(Adversarial, Challenge3StrawmanCannotDetectOmission) {
  // The paper's motivating gap: without SMT, dropping one of several MBr
  // fragments in a block is UNDETECTABLE. The light node accepts a wrong
  // (incomplete) history.
  Harness h(ProtocolConfig{Design::kStrawmanVariant, kRoomy, 16});
  QueryResponse resp = h.full.query(victim());
  GroundTruth gt = scan_ground_truth(*setup().workload, victim());
  if (!attacks::omit_tx_no_count(resp)) {
    GTEST_SKIP() << "no multi-tx block in this workload";
  }
  VerifyOutcome out = h.run(victim(), resp);
  EXPECT_TRUE(out.ok);  // the attack slips through!
  EXPECT_LT(out.history.total_txs(), gt.txs.size());
  EXPECT_FALSE(out.history.fully_complete());
}

TEST(Adversarial, LvqNoSmtPaysIntegralBlocksToStayComplete) {
  // The no-SMT ablation avoids Challenge 3 the only way it can: every
  // failed check ships the whole block. Bare-branch proofs are rejected.
  Harness h(ProtocolConfig{Design::kLvqNoSmt, kRoomy, 16});
  QueryResponse resp = h.full.query(victim());
  EXPECT_FALSE(attacks::omit_tx_no_count(resp));  // nothing to omit from
  VerifyOutcome out = h.run(victim(), resp);
  ASSERT_TRUE(out.ok);
  EXPECT_TRUE(out.history.fully_complete());

  // A malicious server that downgrades an integral block to bare branches
  // (to hide one tx) is rejected outright.
  bool downgraded = false;
  for (SegmentQueryProof& seg : resp.segments) {
    for (auto& [height, proof] : seg.block_proofs) {
      if (proof.kind != BlockProof::Kind::kIntegralBlock) continue;
      proof.kind = BlockProof::Kind::kExistentNoCount;
      proof.block.reset();
      // (Contents don't matter; the kind alone must be rejected.)
      downgraded = true;
      break;
    }
    if (downgraded) break;
  }
  ASSERT_TRUE(downgraded);
  VerifyOutcome bad = h.run(victim(), resp);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, VerifyError::kFragmentKindInvalid);
}

TEST(Adversarial, LvqDetectsSuppressedBlockProof) {
  Harness h(ProtocolConfig{Design::kLvq, kRoomy, 16});
  QueryResponse resp = h.full.query(victim());
  ASSERT_TRUE(attacks::suppress_block_proof(resp));
  VerifyOutcome out = h.run(victim(), resp);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kBlockProofMissing);
}

TEST(Adversarial, StrawmanDetectsSuppressedFragment) {
  // Turning a non-empty fragment into Ø contradicts the (header-committed)
  // BF: the check failed, so Ø is illegal (Eq. 4 enforcement).
  Harness h(ProtocolConfig{Design::kStrawmanVariant, kRoomy, 16});
  QueryResponse resp = h.full.query(victim());
  ASSERT_TRUE(attacks::suppress_block_proof(resp));
  VerifyOutcome out = h.run(victim(), resp);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kFragmentKindInvalid);
}

TEST(Adversarial, LvqDetectsTamperedBmtBloomFilter) {
  // §VI: BMT hashes commit to the filters (Eq. 2), so clearing bits to
  // fake absence breaks the chain up to the header root.
  Harness h(ProtocolConfig{Design::kLvq, kTight, 16});
  QueryResponse resp = h.full.query(victim());
  ASSERT_TRUE(attacks::tamper_bmt_bloom_filter(resp));
  VerifyOutcome out = h.run(victim(), resp);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kBmtProofInvalid);
}

TEST(Adversarial, VariantDetectsTamperedShippedBf) {
  Harness h(ProtocolConfig{Design::kStrawmanVariant, kRoomy, 16});
  QueryResponse resp = h.full.query(victim());
  ASSERT_TRUE(attacks::tamper_shipped_bloom_filter(resp));
  VerifyOutcome out = h.run(victim(), resp);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kBfHashMismatch);
}

TEST(Adversarial, LvqDetectsForgedCount) {
  Harness h(ProtocolConfig{Design::kLvq, kRoomy, 16});
  QueryResponse resp = h.full.query(victim());
  ASSERT_TRUE(attacks::forge_count(resp));
  VerifyOutcome out = h.run(victim(), resp);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kSmtProofInvalid);
}

TEST(Adversarial, LvqDetectsCorruptedTx) {
  Harness h(ProtocolConfig{Design::kLvq, kRoomy, 16});
  QueryResponse resp = h.full.query(victim());
  ASSERT_TRUE(attacks::corrupt_tx(resp));
  VerifyOutcome out = h.run(victim(), resp);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kMerkleProofInvalid);
}

TEST(Adversarial, StrawmanDetectsCorruptedTx) {
  Harness h(ProtocolConfig{Design::kStrawmanVariant, kRoomy, 16});
  QueryResponse resp = h.full.query(victim());
  ASSERT_TRUE(attacks::corrupt_tx(resp));
  EXPECT_EQ(h.run(victim(), resp).error, VerifyError::kMerkleProofInvalid);
}

TEST(Adversarial, LvqDetectsDroppedSegment) {
  Harness h(ProtocolConfig{Design::kLvq, kRoomy, 16});
  QueryResponse resp = h.full.query(victim());
  ASSERT_TRUE(attacks::drop_segment(resp));
  VerifyOutcome out = h.run(victim(), resp);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kShapeMismatch);
}

TEST(Adversarial, LvqDetectsIrrelevantTxPadding) {
  // Pad an existence proof with a genuine (provable!) transaction that
  // does not involve the address — rejecting this stops count inflation.
  Harness h(ProtocolConfig{Design::kLvq, kRoomy, 16});
  QueryResponse resp = h.full.query(victim());
  // Find an existence proof and clone its first tx into a mutated one that
  // drops the victim address.
  bool planted = false;
  for (SegmentQueryProof& seg : resp.segments) {
    for (auto& [height, proof] : seg.block_proofs) {
      if (proof.kind != BlockProof::Kind::kExistent || !proof.existence)
        continue;
      auto& e = *proof.existence;
      e.count_branch.leaf.count += 1;  // claim one more appearance
      TxWithBranch extra = e.txs.front();
      e.txs.push_back(extra);  // duplicate tx to satisfy the count
      planted = true;
      break;
    }
    if (planted) break;
  }
  ASSERT_TRUE(planted);
  VerifyOutcome out = h.run(victim(), resp);
  EXPECT_FALSE(out.ok);
  // Rejected either as a forged count (SMT branch hash broke) or, had the
  // count been genuine, as a duplicate tx.
  EXPECT_TRUE(out.error == VerifyError::kSmtProofInvalid ||
              out.error == VerifyError::kDuplicateTx);
}

TEST(Adversarial, LvqRejectsHistoryForGhostWithFakeTx) {
  // Claim the ghost address (no history) has a transaction by splicing in
  // a victim tx: involves() fails -> kTxNotRelevant, or the SMT existence
  // branch for the ghost cannot be built at all (absence is provable).
  Harness h(ProtocolConfig{Design::kLvq, kTight, 16});
  QueryResponse honest = h.full.query(ghost());
  VerifyOutcome out = h.run(ghost(), honest);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.history.total_txs(), 0u);

  // Now mutate: replace the first absence proof with an existence claim
  // stolen from the victim's response.
  QueryResponse vresp = h.full.query(victim());
  const BlockExistenceProof* stolen = nullptr;
  for (const SegmentQueryProof& seg : vresp.segments) {
    for (const auto& [height, proof] : seg.block_proofs) {
      if (proof.kind == BlockProof::Kind::kExistent && proof.existence) {
        stolen = &*proof.existence;
        break;
      }
    }
    if (stolen) break;
  }
  ASSERT_NE(stolen, nullptr);
  bool planted = false;
  for (SegmentQueryProof& seg : honest.segments) {
    for (auto& [height, proof] : seg.block_proofs) {
      if (proof.kind == BlockProof::Kind::kAbsent) {
        proof.kind = BlockProof::Kind::kExistent;
        proof.absence.reset();
        proof.existence = *stolen;
        planted = true;
        break;
      }
    }
    if (planted) break;
  }
  if (!planted) GTEST_SKIP() << "no absence proofs under this geometry";
  VerifyOutcome bad = h.run(ghost(), honest);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, VerifyError::kSmtProofInvalid);
}

TEST(Adversarial, TruncatedWireResponseRejectedGracefully) {
  ProtocolConfig config{Design::kLvq, kRoomy, 16};
  Harness h(config);
  QueryResponse resp = h.full.query(victim());
  Writer w;
  resp.serialize(w);
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, w.size() / 2,
                          w.size() - 1}) {
    Reader r(ByteSpan{w.data().data(), cut});
    EXPECT_THROW(QueryResponse::deserialize(r, config), SerializeError)
        << "cut at " << cut;
  }
}

TEST(Adversarial, BitflippedWireResponseNeverCrashes) {
  // Fuzz-ish robustness: single-bit flips either still verify-fail cleanly
  // or raise SerializeError; nothing may crash or hang.
  ProtocolConfig config{Design::kLvq, kRoomy, 16};
  Harness h(config);
  QueryResponse resp = h.full.query(victim());
  Writer w;
  resp.serialize(w);
  Bytes bytes = w.take();
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes copy = bytes;
    std::size_t pos = rng.below(copy.size());
    copy[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      Reader r(ByteSpan{copy.data(), copy.size()});
      QueryResponse decoded = QueryResponse::deserialize(r, config);
      VerifyOutcome out = h.light.verify(victim(), decoded);
      // Flips in tx payload values can keep everything consistent except
      // the Merkle leaf — most flips must fail; a flip that keeps the
      // response identical is impossible, but a flip in an IGNORED byte
      // cannot exist because decode is canonical. So: must not be ok...
      // unless the flip landed in a part the verifier recomputes anyway
      // (there is none). Assert rejection.
      EXPECT_FALSE(out.ok) << "bit flip at byte " << pos << " accepted";
    } catch (const SerializeError&) {
      // fine — rejected at decode
    }
  }
}

}  // namespace
}  // namespace lvq
