// Lock-free warm-path tests: epoch-based reclamation (EpochDomain), the
// rewritten ShardedByteCache (lock-free readers, CLOCK eviction), the
// engine's cost-aware response-cache admission, and the shape-normalized
// segment keys that let one cached segment proof serve point, batch, and
// range queries. The *Churn suites hammer readers against writers /
// rebind and run under TSan in CI (the nightly job raises
// LVQ_CACHE_SOAK_MS).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "net/message.hpp"
#include "node/session.hpp"
#include "server/metrics.hpp"
#include "server/proof_cache.hpp"
#include "server/serving_engine.hpp"
#include "util/epoch.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

std::uint64_t soak_ms(std::uint64_t default_ms) {
  if (const char* env = std::getenv("LVQ_CACHE_SOAK_MS")) {
    return std::strtoull(env, nullptr, 10);
  }
  return default_ms;
}

ByteSpan as_span(const Bytes& b) { return ByteSpan{b.data(), b.size()}; }

// ---- EpochDomain ----

std::atomic<int> g_freed{0};

void counting_deleter(void* p) noexcept {
  g_freed.fetch_add(1);
  delete static_cast<int*>(p);
}

TEST(EpochDomain, RetireWaitsForPinnedReader) {
  EpochDomain& dom = EpochDomain::instance();
  g_freed.store(0);

  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochDomain::Guard g;
    pinned.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  // The reader pinned an epoch at or before this retire's stamp, so no
  // amount of collecting may run the deleter yet.
  dom.retire(new int(42), &counting_deleter);
  dom.collect();
  EXPECT_EQ(g_freed.load(), 0);

  release.store(true);
  reader.join();
  dom.synchronize();
  EXPECT_EQ(g_freed.load(), 1);
}

TEST(EpochDomain, GuardsNestWithoutDeadlock) {
  EpochDomain& dom = EpochDomain::instance();
  g_freed.store(0);
  {
    EpochDomain::Guard outer;
    {
      EpochDomain::Guard inner;  // same thread, nested: must not spin
      dom.retire(new int(7), &counting_deleter);
    }
    // Still pinned by `outer`: the retired block must survive a collect.
    dom.collect();
    EXPECT_EQ(g_freed.load(), 0);
  }
  dom.synchronize();
  EXPECT_EQ(g_freed.load(), 1);
}

// ---- ShardedByteCache basics (beyond server_engine_test's suite) ----

Bytes soak_key(std::uint64_t k) {
  Bytes b(8);
  for (int i = 0; i < 8; ++i) {
    b[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((k >> (8 * i)) & 0xff);
  }
  return b;
}

// Deterministic value per key so concurrent readers can validate hits
// without any shared expected-state table.
Bytes soak_value(std::uint64_t k) {
  Bytes v(64 + k % 128);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::uint8_t>((k * 31 + i) & 0xff);
  }
  return v;
}

TEST(ProofCacheLockFree, RoundTripAndOverwrite) {
  ShardedByteCache cache(1 << 16, 4);
  Bytes k = soak_key(1);
  cache.put(as_span(k), as_span(soak_value(1)));
  Bytes out;
  ASSERT_TRUE(cache.get(as_span(k), &out));
  EXPECT_EQ(out, soak_value(1));

  // Overwrite publishes a fresh node; readers must see old or new bytes,
  // never a mix — single-threaded here, so simply the new value.
  cache.put(as_span(k), as_span(soak_value(2)));
  ASSERT_TRUE(cache.get(as_span(k), &out));
  EXPECT_EQ(out, soak_value(2));
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ProofCacheLockFree, BudgetHoldsUnderManyInserts) {
  constexpr std::uint64_t kCapacity = 1 << 14;
  ShardedByteCache cache(kCapacity, 2);
  for (std::uint64_t k = 0; k < 600; ++k) {
    Bytes key = soak_key(k);
    Bytes val = soak_value(k);
    cache.put(as_span(key), as_span(val));
  }
  ShardedByteCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, kCapacity);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

// Readers spin lock-free on a mixed hit/miss key set while one writer per
// shard-ish inserts, overwrites, and periodically clears. Every hit must
// return the full deterministic value for its key — a torn read, a
// use-after-free, or a key/value mismatch all land in the mismatch
// counter (and TSan catches the silent races).
TEST(ProofCacheChurn, ConcurrentReadersSurviveWriterChurn) {
  const std::uint64_t duration = soak_ms(300);
  constexpr std::uint64_t kKeys = 256;
  ShardedByteCache cache(1 << 15, 4);  // small: constant eviction pressure

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> mismatches{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t i = static_cast<std::uint64_t>(t) * 17;
      Bytes out;
      while (!stop.load(std::memory_order_relaxed)) {
        Bytes key = soak_key(i % kKeys);
        if (cache.get(as_span(key), &out)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          if (out != soak_value(i % kKeys)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        ++i;
      }
    });
  }

  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      Bytes key = soak_key(i % kKeys);
      Bytes val = soak_value(i % kKeys);
      cache.put(as_span(key), as_span(val));
      if (++i % 4096 == 0) cache.clear();
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(duration));
  stop.store(true);
  for (std::thread& r : readers) r.join();
  writer.join();

  EXPECT_GT(hits.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  ShardedByteCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, cache.capacity_bytes());
}

// ---- Cost-aware admission (generic-handler engine) ----

Bytes make_fake_query_request(std::uint8_t tag) {
  Bytes body{tag, 1, 2, 3};
  return encode_envelope(MsgType::kQueryRequest, as_span(body));
}

TEST(CacheAdmission, FastResponsesBypassTheCache) {
  ServingEngineOptions opts;
  opts.workers = 1;
  opts.cache_admit_min_us = 10'000'000;  // nothing is ever this slow
  ServingEngine engine([](ByteSpan req) { return Bytes(req.begin(), req.end()); },
                       opts);
  Bytes req = make_fake_query_request(9);
  Bytes first = engine.handle(as_span(req));
  EXPECT_EQ(engine.handle(as_span(req)), first);

  MetricsSnapshot snap = engine.snapshot();
  EXPECT_GE(snap.cache_bypassed, 2u);
  EXPECT_EQ(snap.cache_admitted, 0u);
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_EQ(snap.cache_entries, 0u);
}

TEST(CacheAdmission, ZeroThresholdAdmitsAndServesHits) {
  ServingEngineOptions opts;
  opts.workers = 1;
  opts.cache_admit_min_us = 0;
  ServingEngine engine([](ByteSpan req) { return Bytes(req.begin(), req.end()); },
                       opts);
  Bytes req = make_fake_query_request(7);
  Bytes first = engine.handle(as_span(req));
  EXPECT_EQ(engine.handle(as_span(req)), first);

  MetricsSnapshot snap = engine.snapshot();
  EXPECT_GE(snap.cache_admitted, 1u);
  EXPECT_GE(snap.cache_hits, 1u);
  EXPECT_EQ(snap.cache_bypassed, 0u);
}

TEST(CacheAdmission, SlowResponsesClearTheDefaultThreshold) {
  ServingEngineOptions opts;
  opts.workers = 1;
  opts.cache_admit_min_us = 1000;
  ServingEngine engine(
      [](ByteSpan req) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        return Bytes(req.begin(), req.end());
      },
      opts);
  Bytes req = make_fake_query_request(5);
  Bytes first = engine.handle(as_span(req));
  EXPECT_EQ(engine.handle(as_span(req)), first);

  MetricsSnapshot snap = engine.snapshot();
  EXPECT_GE(snap.cache_admitted, 1u);
  EXPECT_GE(snap.cache_hits, 1u);
}

// ---- Shape-normalized segment keys ----

const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 4242;
    c.num_blocks = 32;
    c.background_txs_per_block = 8;
    c.profiles = {{"busy", 12, 8}, {"rare", 2, 2}, {"ghost", 0, 0}};
    return make_setup(c);
  }();
  return s;
}

constexpr BloomGeometry kGeom{256, 6};

Bytes make_query_request(const Address& a) {
  Writer w;
  QueryRequest{a}.serialize(w);
  return encode_envelope(MsgType::kQueryRequest, as_span(w.data()));
}

Bytes make_batch_request(const std::vector<Address>& addrs) {
  Writer w;
  w.varint(addrs.size());
  for (const Address& a : addrs) a.serialize(w);
  return encode_envelope(MsgType::kBatchQueryRequest, as_span(w.data()));
}

Bytes make_range_request(const Address& a, std::uint64_t from,
                         std::uint64_t to) {
  Writer w;
  RangeQueryRequest{a, from, to}.serialize(w);
  return encode_envelope(MsgType::kRangeQueryRequest, as_span(w.data()));
}

// A point query warms the segment cache; a batch over the same addresses
// and a whole-chain range must then splice those very entries (the keys
// carry no query shape) while staying byte-identical to the backend.
TEST(ShapeNormalizedKeys, PointFillServesBatchAndRange) {
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode full(setup().workload, setup().derived, config);
  ServingEngineOptions opts;
  opts.workers = 2;
  opts.cache_admit_min_us = 0;
  ServingEngine engine(full, opts);

  std::vector<Address> addrs;
  for (const AddressProfile& p : setup().workload->profiles) {
    addrs.push_back(p.address);
  }

  for (const Address& a : addrs) {
    Bytes req = make_query_request(a);
    EXPECT_EQ(engine.handle(as_span(req)), full.handle_message(as_span(req)));
  }
  MetricsSnapshot after_points = engine.snapshot();
  EXPECT_GT(after_points.segment_misses, 0u);

  Bytes batch = make_batch_request(addrs);
  EXPECT_EQ(engine.handle(as_span(batch)), full.handle_message(as_span(batch)));
  MetricsSnapshot after_batch = engine.snapshot();
  EXPECT_GT(after_batch.segment_hits, after_points.segment_hits)
      << "batch entries must reuse the point queries' segment entries";

  Bytes range = make_range_request(addrs[0], 1, full.tip_height());
  EXPECT_EQ(engine.handle(as_span(range)), full.handle_message(as_span(range)));
  MetricsSnapshot after_range = engine.snapshot();
  EXPECT_GT(after_range.segment_hits, after_batch.segment_hits)
      << "whole-segment range pieces must splice from the same entries";

  // Partial ranges mix spliced whole segments with freshly anchored
  // pieces; bytes still match the backend exactly.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> spans = {
      {5, 20}, {1, 7}, {17, 32}};
  for (auto [from, to] : spans) {
    Bytes r = make_range_request(addrs[0], from, to);
    EXPECT_EQ(engine.handle(as_span(r)), full.handle_message(as_span(r)))
        << "range [" << from << ", " << to << "]";
  }
  EXPECT_EQ(engine.snapshot().responses_error, 0u);
}

// Out-of-range requests must take the backend's error path, not the fast
// path's — byte-identical error envelopes included.
TEST(ShapeNormalizedKeys, InvalidRangesMatchBackendErrors) {
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode full(setup().workload, setup().derived, config);
  ServingEngine engine(full);
  const Address& a = setup().workload->profiles[0].address;
  Bytes beyond = make_range_request(a, 1, full.tip_height() + 5);
  EXPECT_EQ(engine.handle(as_span(beyond)),
            full.handle_message(as_span(beyond)));
}

// ---- Engine churn: lock-free readers vs rebind/invalidate/eviction ----

// Readers hammer point/batch/range requests while the main thread swaps
// the engine between two chain states (pure append apart), invalidates,
// and a deliberately tiny cache keeps eviction running. Every reply must
// be byte-exact for ONE of the two published states — torn responses,
// stale-epoch leaks, and reclamation races all surface as mismatches (or
// under TSan, as reports). CI runs this suite under TSan; the nightly
// soak raises LVQ_CACHE_SOAK_MS.
TEST(EngineChurn, RepliesAlwaysMatchOnePublishedState) {
  const std::uint64_t duration = soak_ms(300);
  const auto& bodies = setup().workload->blocks;
  std::vector<std::vector<Transaction>> prefix(bodies.begin(),
                                               bodies.end() - 8);
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  ExperimentSetup s_a = make_setup_from_blocks(prefix);
  ExperimentSetup s_b = make_setup_from_blocks(bodies);
  FullNode node_a(s_a.workload, s_a.derived, config);
  FullNode node_b(s_b.workload, s_b.derived, config);

  std::vector<Address> addrs;
  for (const AddressProfile& p : setup().workload->profiles) {
    addrs.push_back(p.address);
  }
  std::vector<Bytes> requests;
  for (const Address& a : addrs) requests.push_back(make_query_request(a));
  requests.push_back(make_batch_request(addrs));
  // Valid on both tips (24 and 32).
  requests.push_back(make_range_request(addrs[0], 3, 20));

  std::vector<Bytes> ref_a, ref_b;
  for (const Bytes& r : requests) {
    ref_a.push_back(node_a.handle_message(as_span(r)));
    ref_b.push_back(node_b.handle_message(as_span(r)));
  }

  ServingEngineOptions opts;
  opts.workers = 2;
  opts.queue_depth = 32;
  opts.cache_bytes = 1 << 15;  // tiny on purpose: eviction churn
  opts.cache_admit_min_us = 0;
  ServingEngine engine(node_a, opts);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t i = static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t pick = i++ % requests.size();
        Bytes reply = engine.handle(as_span(requests[pick]));
        if (reply != ref_a[pick] && reply != ref_b[pick]) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(duration);
  bool on_b = false;
  while (std::chrono::steady_clock::now() < deadline) {
    engine.rebind(on_b ? node_a : node_b);
    on_b = !on_b;
    engine.invalidate();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (std::thread& r : readers) r.join();

  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(torn.load(), 0u);
  MetricsSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.responses_error, 0u);

  // Settled: the engine serves whichever node it last bound, byte-exact.
  // (`on_b` true means the previous iteration bound node_b.)
  const std::vector<Bytes>& settled = on_b ? ref_b : ref_a;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(engine.handle(as_span(requests[i])), settled[i]);
  }
}

}  // namespace
}  // namespace lvq
