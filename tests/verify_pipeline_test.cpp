// Differential tests for the zero-copy decode path and the parallel
// verification pipeline: owned+serial is the reference; view decoding,
// thread-pool fan-out, and the BF-hash memo must all be byte-identical to
// it — on honest responses, on every canned attack mutation, and on
// truncated/corrupted wire bytes.
#include <gtest/gtest.h>

#include <memory>

#include "node/attack.hpp"
#include "node/session.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 4242;
    c.num_blocks = 64;
    c.background_txs_per_block = 10;
    c.profiles = {
        {"victim", 30, 18},  // multi-tx blocks exist (18 < 30)
        {"ghost", 0, 0},
    };
    return make_setup(c);
  }();
  return s;
}

const Address& victim() { return setup().workload->profiles[0].address; }
const Address& ghost() { return setup().workload->profiles[1].address; }

constexpr Design kAllDesigns[] = {Design::kStrawman, Design::kStrawmanVariant,
                                  Design::kLvqNoBmt, Design::kLvqNoSmt,
                                  Design::kLvq};

constexpr BloomGeometry kRoomy{512, 6};

Bytes serialize_response(const QueryResponse& resp) {
  Writer w;
  resp.serialize(w);
  return w.data();
}

void expect_same_outcome(const VerifyOutcome& a, const VerifyOutcome& b,
                         const std::string& label) {
  EXPECT_EQ(a.ok, b.ok) << label;
  EXPECT_EQ(a.error, b.error) << label;
  EXPECT_EQ(a.detail, b.detail) << label;
  ASSERT_EQ(a.history.blocks.size(), b.history.blocks.size()) << label;
  for (std::size_t i = 0; i < a.history.blocks.size(); ++i) {
    const VerifiedBlockTxs& x = a.history.blocks[i];
    const VerifiedBlockTxs& y = b.history.blocks[i];
    EXPECT_EQ(x.height, y.height) << label;
    EXPECT_EQ(x.count_proven, y.count_proven) << label;
    ASSERT_EQ(x.txs.size(), y.txs.size()) << label;
    for (std::size_t t = 0; t < x.txs.size(); ++t) {
      EXPECT_EQ(x.txs[t].txid(), y.txs[t].txid()) << label;
    }
  }
}

/// Decodes `bytes` both ways and verifies through all the pipelines
/// (owned/view x serial/parallel, plus view+memo); every outcome must
/// equal the owned+serial reference.
struct Paths {
  const ProtocolConfig& config;
  const std::vector<BlockHeader>& headers;
  ThreadPool& pool;

  VerifyOutcome check(ByteSpan bytes, const Address& address,
                      const std::string& label) const {
    Reader ro(bytes);
    QueryResponse owned = QueryResponse::deserialize(ro, config);
    Reader rv(bytes);
    QueryResponseView view = QueryResponseView::deserialize(rv, config);

    EXPECT_EQ(view.serialized_size(), owned.serialized_size()) << label;
    SizeBreakdown ob = owned.breakdown();
    SizeBreakdown vb = view.breakdown();
    EXPECT_EQ(ob.bf_bytes, vb.bf_bytes) << label;
    EXPECT_EQ(ob.bmt_bytes, vb.bmt_bytes) << label;
    EXPECT_EQ(ob.smt_bytes, vb.smt_bytes) << label;
    EXPECT_EQ(ob.tx_bytes, vb.tx_bytes) << label;
    EXPECT_EQ(ob.mt_bytes, vb.mt_bytes) << label;
    EXPECT_EQ(ob.block_bytes, vb.block_bytes) << label;
    EXPECT_EQ(ob.other_bytes, vb.other_bytes) << label;

    VerifyOutcome ref = verify_response(headers, config, address, owned);
    expect_same_outcome(
        ref, verify_response(headers, config, address, view),
        label + " [view serial]");
    expect_same_outcome(
        ref,
        verify_response(headers, config, address, owned,
                        VerifyContext{&pool, nullptr}),
        label + " [owned parallel]");
    expect_same_outcome(
        ref,
        verify_response(headers, config, address, view,
                        VerifyContext{&pool, nullptr}),
        label + " [view parallel]");
    BfHashMemo memo;
    expect_same_outcome(
        ref,
        verify_response(headers, config, address, view,
                        VerifyContext{&pool, &memo}),
        label + " [view parallel memo]");
    return ref;
  }
};

TEST(VerifyPipeline, HonestResponsesIdenticalAcrossAllPaths) {
  ThreadPool pool(4);
  for (Design d : kAllDesigns) {
    ProtocolConfig config{d, kRoomy, 16};
    FullNode full(setup().workload, setup().derived, config);
    std::vector<BlockHeader> headers = full.headers();
    Paths paths{config, headers, pool};
    for (const Address* addr : {&victim(), &ghost()}) {
      Bytes bytes = serialize_response(full.query(*addr));
      VerifyOutcome ref =
          paths.check(ByteSpan{bytes.data(), bytes.size()}, *addr,
                      std::string(design_name(d)));
      EXPECT_TRUE(ref.ok) << design_name(d);
    }
  }
}

TEST(VerifyPipeline, AttackMutationsIdenticalAcrossAllPaths) {
  using Mutator = bool (*)(QueryResponse&);
  struct NamedMutator {
    const char* name;
    Mutator fn;
  };
  const NamedMutator mutators[] = {
      {"omit_tx_from_existence", attacks::omit_tx_from_existence},
      {"omit_tx_no_count", attacks::omit_tx_no_count},
      {"suppress_block_proof", attacks::suppress_block_proof},
      {"tamper_bmt_bloom_filter", attacks::tamper_bmt_bloom_filter},
      {"tamper_shipped_bloom_filter", attacks::tamper_shipped_bloom_filter},
      {"forge_count", attacks::forge_count},
      {"corrupt_tx", attacks::corrupt_tx},
      {"drop_segment", attacks::drop_segment},
  };
  ThreadPool pool(4);
  for (Design d : kAllDesigns) {
    ProtocolConfig config{d, kRoomy, 16};
    FullNode full(setup().workload, setup().derived, config);
    std::vector<BlockHeader> headers = full.headers();
    Paths paths{config, headers, pool};
    for (const NamedMutator& m : mutators) {
      QueryResponse resp = full.query(victim());
      if (!m.fn(resp)) continue;  // shape did not admit this attack
      Bytes bytes = serialize_response(resp);
      std::string label =
          std::string(design_name(d)) + "/" + m.name;
      paths.check(ByteSpan{bytes.data(), bytes.size()}, victim(), label);
    }
  }
}

// Truncated and bit-flipped wire bytes: the view decoder's structural
// skip-parsers must accept/reject exactly what the owned decoder does,
// with the identical error message.
TEST(VerifyPipeline, MalformedBytesDecodeIdentically) {
  constexpr BloomGeometry kTight{24, 4};
  Rng rng(91);
  for (Design d : kAllDesigns) {
    ProtocolConfig config{d, kTight, 16};
    FullNode full(setup().workload, setup().derived, config);
    Bytes bytes = serialize_response(full.query(victim()));

    auto diff_decode = [&](ByteSpan mutated, const std::string& label) {
      std::string owned_err, view_err;
      bool owned_ok = true, view_ok = true;
      try {
        Reader r(mutated);
        (void)QueryResponse::deserialize(r, config);
      } catch (const SerializeError& e) {
        owned_ok = false;
        owned_err = e.what();
      }
      try {
        Reader r(mutated);
        (void)QueryResponseView::deserialize(r, config);
      } catch (const SerializeError& e) {
        view_ok = false;
        view_err = e.what();
      }
      EXPECT_EQ(owned_ok, view_ok) << label;
      EXPECT_EQ(owned_err, view_err) << label;
    };

    // Every short prefix, then a sample of longer truncations.
    std::size_t dense = std::min<std::size_t>(bytes.size(), 96);
    for (std::size_t len = 0; len < dense; ++len) {
      diff_decode(ByteSpan{bytes.data(), len},
                  std::string(design_name(d)) + " truncate " +
                      std::to_string(len));
    }
    for (int i = 0; i < 200; ++i) {
      std::size_t len = rng.next_u64() % bytes.size();
      diff_decode(ByteSpan{bytes.data(), len},
                  std::string(design_name(d)) + " truncate " +
                      std::to_string(len));
    }
    // Random single-byte corruptions.
    for (int i = 0; i < 200; ++i) {
      Bytes mutated = bytes;
      std::size_t at = rng.next_u64() % mutated.size();
      mutated[at] ^= static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
      diff_decode(ByteSpan{mutated.data(), mutated.size()},
                  std::string(design_name(d)) + " flip " + std::to_string(at));
    }
  }
}

// Decode + verify from an exactly-sized heap buffer: under ASan any read
// past the reply frame (the classic zero-copy lifetime bug) faults.
TEST(VerifyPipeline, ViewNeverReadsOutsideExactBuffer) {
  ThreadPool pool(4);
  for (Design d : kAllDesigns) {
    ProtocolConfig config{d, kRoomy, 16};
    FullNode full(setup().workload, setup().derived, config);
    std::vector<BlockHeader> headers = full.headers();
    Bytes bytes = serialize_response(full.query(victim()));

    auto frame = std::make_unique<std::uint8_t[]>(bytes.size());
    std::copy(bytes.begin(), bytes.end(), frame.get());
    ByteSpan span{frame.get(), bytes.size()};

    Reader r(span);
    QueryResponseView view = QueryResponseView::deserialize(r, config);
    (void)view.breakdown();
    BfHashMemo memo;
    VerifyOutcome out = verify_response(headers, config, victim(), view,
                                        VerifyContext{&pool, &memo});
    EXPECT_TRUE(out.ok) << design_name(d);
  }
}

TEST(VerifyPipeline, RangeVerifyParallelMatchesSerial) {
  ThreadPool pool(4);
  for (Design d : kAllDesigns) {
    ProtocolConfig config{d, kRoomy, 16};
    FullNode full(setup().workload, setup().derived, config);
    std::vector<BlockHeader> headers = full.headers();
    for (auto [from, to] : {std::pair<std::uint64_t, std::uint64_t>{1, 64},
                            {7, 23},
                            {17, 64},
                            {5, 5}}) {
      RangeQueryResponse resp = full.range_query(victim(), from, to);
      VerifyOutcome serial =
          verify_range_response(headers, config, victim(), resp);
      VerifyOutcome parallel = verify_range_response(
          headers, config, victim(), resp, VerifyContext{&pool, nullptr});
      expect_same_outcome(serial, parallel,
                          std::string(design_name(d)) + " range honest");
      EXPECT_TRUE(serial.ok);

      // Corrupt one fragment / piece and require identical rejections.
      RangeQueryResponse bad = full.range_query(victim(), from, to);
      if (!bad.pieces.empty()) {
        bad.pieces.back().block_proofs.clear();
      } else if (!bad.fragments.empty()) {
        bad.fragments.back().kind = BlockProof::Kind::kIntegralBlock;
        bad.fragments.back().block.reset();
      }
      VerifyOutcome bad_serial =
          verify_range_response(headers, config, victim(), bad);
      VerifyOutcome bad_parallel = verify_range_response(
          headers, config, victim(), bad, VerifyContext{&pool, nullptr});
      expect_same_outcome(bad_serial, bad_parallel,
                          std::string(design_name(d)) + " range mutated");
    }
  }
}

TEST(VerifyPipeline, MultiVerifyParallelMatchesSerial) {
  ThreadPool pool(4);
  std::vector<Address> watch = {victim(), ghost(), victim()};
  for (Design d : kAllDesigns) {
    ProtocolConfig config{d, kRoomy, 16};
    FullNode full(setup().workload, setup().derived, config);
    std::vector<BlockHeader> headers = full.headers();
    MultiQueryResponse resp = full.multi_query(watch);

    auto expect_same_vec = [&](const std::vector<VerifyOutcome>& a,
                               const std::vector<VerifyOutcome>& b,
                               const std::string& label) {
      ASSERT_EQ(a.size(), b.size()) << label;
      for (std::size_t i = 0; i < a.size(); ++i) {
        expect_same_outcome(a[i], b[i], label + " addr " + std::to_string(i));
      }
    };

    std::vector<VerifyOutcome> serial =
        verify_multi_response(headers, config, watch, resp);
    std::vector<VerifyOutcome> parallel = verify_multi_response(
        headers, config, watch, resp, VerifyContext{&pool, nullptr});
    expect_same_vec(serial, parallel,
                    std::string(design_name(d)) + " multi honest");
    for (const VerifyOutcome& out : serial) EXPECT_TRUE(out.ok);
    BfHashMemo memo;
    std::vector<VerifyOutcome> memoized = verify_multi_response(
        headers, config, watch, resp, VerifyContext{&pool, &memo});
    expect_same_vec(serial, memoized,
                    std::string(design_name(d)) + " multi memo");

    // Poison one address's proofs (or a shared BF) and require identical
    // serial/parallel rejection patterns.
    MultiQueryResponse bad = full.multi_query(watch);
    if (!bad.segments.empty()) {
      for (auto& blocks : bad.segments.front().per_address_blocks) {
        if (!blocks.empty()) {
          blocks.pop_back();
          break;
        }
      }
    } else if (!bad.block_bfs.empty()) {
      bad.block_bfs.front().mutable_data()[0] ^= 1;
    } else if (!bad.per_address_fragments.empty() &&
               !bad.per_address_fragments.front().empty()) {
      bad.per_address_fragments.front().front().kind =
          BlockProof::Kind::kIntegralBlock;
      bad.per_address_fragments.front().front().block.reset();
    }
    std::vector<VerifyOutcome> bad_serial =
        verify_multi_response(headers, config, watch, bad);
    std::vector<VerifyOutcome> bad_parallel = verify_multi_response(
        headers, config, watch, bad, VerifyContext{&pool, nullptr});
    expect_same_vec(bad_serial, bad_parallel,
                    std::string(design_name(d)) + " multi mutated");
  }
}

// End-to-end: LightNode with a verify pool + per-frame memo (query_batch)
// must agree with pool-less single queries.
TEST(VerifyPipeline, BatchWithPoolAndMemoMatchesSingleQueries) {
  ThreadPool pool(4);
  std::vector<Address> addresses = {victim(), ghost(), victim()};
  for (Design d : kAllDesigns) {
    ProtocolConfig config{d, kRoomy, 16};
    FullNode full(setup().workload, setup().derived, config);
    LightNode light(config);
    light.set_headers(full.headers());
    LoopbackTransport transport(
        [&](ByteSpan req) { return full.handle_message(req); });

    std::vector<LightNode::QueryResult> plain =
        light.query_batch(transport, addresses);
    light.set_verify_pool(&pool);
    std::vector<LightNode::QueryResult> pooled =
        light.query_batch(transport, addresses);
    light.set_verify_pool(nullptr);

    ASSERT_EQ(plain.size(), pooled.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
      expect_same_outcome(plain[i].outcome, pooled[i].outcome,
                          std::string(design_name(d)) + " batch addr " +
                              std::to_string(i));
      EXPECT_TRUE(pooled[i].outcome.ok);
      EXPECT_EQ(plain[i].response_bytes, pooled[i].response_bytes);
      LightNode::QueryResult single = light.query(transport, addresses[i]);
      expect_same_outcome(single.outcome, pooled[i].outcome,
                          std::string(design_name(d)) + " batch-vs-single " +
                              std::to_string(i));
    }
  }
}

TEST(BfHashMemoTest, ReusesHashForIdenticalBytes) {
  BloomGeometry geom{64, 4};
  BloomFilter a(geom);
  a.set_bit(7);
  a.set_bit(100);
  BloomFilter b = a;         // equal bytes, distinct storage
  BloomFilter c(geom);       // different bytes
  c.set_bit(8);

  BfHashMemo memo;
  memo.resize_for(2);
  Hash256 ha = memo.content_hash(0, a);
  EXPECT_EQ(ha, a.content_hash());
  EXPECT_EQ(memo.content_hash(0, b), ha);   // memcmp hit, same digest
  EXPECT_EQ(memo.content_hash(0, c), c.content_hash());  // invalidated
  EXPECT_EQ(memo.content_hash(1, c), c.content_hash());  // distinct slot
  EXPECT_EQ(memo.content_hash(0, a), a.content_hash());  // re-store works
}

}  // namespace
}  // namespace lvq
