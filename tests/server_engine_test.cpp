// Tests for the query-serving engine: byte-identical cached serving,
// epoch invalidation across chain growth and reorgs, queue-full
// backpressure through RetryTransport, the kStats RPC, TcpServer
// connection shedding, and a short mixed-traffic soak (the CI soak step
// runs the Soak suite with LVQ_SOAK_MS raised).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "net/message.hpp"
#include "net/retry_transport.hpp"
#include "net/reactor_server.hpp"
#include "net/tcp_transport.hpp"
#include "node/session.hpp"
#include "server/metrics.hpp"
#include "server/proof_cache.hpp"
#include "server/serving_engine.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 991;
    c.num_blocks = 32;
    c.background_txs_per_block = 8;
    c.profiles = {{"busy", 12, 8}, {"rare", 2, 2}, {"ghost", 0, 0}};
    return make_setup(c);
  }();
  return s;
}

constexpr BloomGeometry kGeom{256, 6};

Bytes span_copy(ByteSpan s) { return Bytes(s.begin(), s.end()); }

ByteSpan as_span(const Bytes& b) { return ByteSpan{b.data(), b.size()}; }

Bytes make_query_request(const Address& a) {
  Writer w;
  QueryRequest{a}.serialize(w);
  return encode_envelope(MsgType::kQueryRequest, as_span(w.data()));
}

Bytes make_range_request(const Address& a, std::uint64_t from,
                         std::uint64_t to) {
  Writer w;
  RangeQueryRequest{a, from, to}.serialize(w);
  return encode_envelope(MsgType::kRangeQueryRequest, as_span(w.data()));
}

Bytes make_multi_request(const std::vector<Address>& addrs) {
  Writer w;
  w.varint(addrs.size());
  for (const Address& a : addrs) a.serialize(w);
  return encode_envelope(MsgType::kMultiQueryRequest, as_span(w.data()));
}

Bytes make_batch_request(const std::vector<Address>& addrs) {
  Writer w;
  w.varint(addrs.size());
  for (const Address& a : addrs) a.serialize(w);
  return encode_envelope(MsgType::kBatchQueryRequest, as_span(w.data()));
}

Bytes make_headers_request() {
  return encode_envelope(MsgType::kHeadersRequest, {});
}

Bytes make_stats_request() {
  return encode_envelope(MsgType::kStatsRequest, {});
}

/// The mixed request set every consistency test replays.
std::vector<Bytes> mixed_requests(const FullNode& full) {
  std::vector<Address> addrs;
  for (const AddressProfile& p : setup().workload->profiles) {
    addrs.push_back(p.address);
  }
  std::vector<Bytes> reqs;
  for (const Address& a : addrs) reqs.push_back(make_query_request(a));
  reqs.push_back(make_range_request(addrs[0], 5, 20));
  reqs.push_back(make_range_request(addrs[1], 1, full.tip_height()));
  reqs.push_back(make_multi_request(addrs));
  reqs.push_back(make_batch_request({addrs[0], addrs[2]}));
  reqs.push_back(make_headers_request());
  return reqs;
}

TEST(ProofCache, ClockEvictionSparesRecentlyTouched) {
  // Room for roughly three of the ~113-byte entries in the single shard.
  // Eviction is CLOCK second-chance, not strict LRU: a touched entry
  // survives the first sweep; which untouched entry goes depends on hash
  // order, so the test pins only what the policy guarantees.
  ShardedByteCache cache(400, 1);
  Bytes v(16, 0xab);
  auto key = [](char c) { return Bytes{static_cast<std::uint8_t>(c)}; };
  cache.put(as_span(key('a')), as_span(v));
  cache.put(as_span(key('b')), as_span(v));
  cache.put(as_span(key('c')), as_span(v));
  Bytes out;
  ASSERT_TRUE(cache.get(as_span(key('a')), &out));  // sets 'a's touched bit
  EXPECT_EQ(out, v);
  cache.put(as_span(key('d')), as_span(v));  // evicts one of the untouched
  EXPECT_TRUE(cache.get(as_span(key('a')), &out));
  EXPECT_TRUE(cache.get(as_span(key('d')), &out));
  const bool have_b = cache.get(as_span(key('b')), &out);
  const bool have_c = cache.get(as_span(key('c')), &out);
  EXPECT_NE(have_b, have_c) << "exactly one untouched entry is evicted";
  ShardedByteCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 4u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 3u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.get(as_span(key('a')), &out));
}

TEST(ProofCache, DisabledCacheNeverStores) {
  ShardedByteCache cache(0, 4);
  EXPECT_FALSE(cache.enabled());
  Bytes kv{1, 2, 3};
  cache.put(as_span(kv), as_span(kv));
  Bytes out;
  EXPECT_FALSE(cache.get(as_span(kv), &out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ProofCache, OversizeValueIsNotStored) {
  ShardedByteCache cache(256, 1);
  Bytes key{1};
  Bytes huge(1024, 0xcd);
  cache.put(as_span(key), as_span(huge));
  Bytes out;
  EXPECT_FALSE(cache.get(as_span(key), &out));
}

TEST(Metrics, HistogramBucketBoundaries) {
  EXPECT_EQ(ServerMetrics::bucket_for(0), 0u);
  EXPECT_EQ(ServerMetrics::bucket_for(1), 0u);
  EXPECT_EQ(ServerMetrics::bucket_for(2), 1u);
  EXPECT_EQ(ServerMetrics::bucket_for(3), 1u);
  EXPECT_EQ(ServerMetrics::bucket_for(4), 2u);
  EXPECT_EQ(ServerMetrics::bucket_for(1023), 9u);
  EXPECT_EQ(ServerMetrics::bucket_for(1024), 10u);
  EXPECT_EQ(ServerMetrics::bucket_for(~0ull), kLatencyBucketCount - 1);
}

TEST(Metrics, SnapshotSerializationRoundTrip) {
  MetricsSnapshot s;
  s.requests_total = 12345;
  s.responses_error = 7;
  s.rejected_busy = 3;
  s.bytes_in = 1 << 20;
  s.bytes_out = 1 << 22;
  s.cache_hits = 99;
  s.cache_misses = 11;
  s.segment_hits = 5;
  s.cache_admitted = 42;
  s.cache_bypassed = 17;
  s.queue_depth = 2;
  s.queue_capacity = 64;
  s.workers = 8;
  s.epoch_tip = 4096;
  s.epoch_generation = 3;
  s.requests_by_type[1] = 12000;
  s.requests_by_type[9] = 345;
  s.latency_buckets[7] = 1000;
  s.latency_buckets[12] = 11345;
  s.latency_count = 12345;
  s.latency_total_us = 99999;

  Writer w;
  s.serialize(w);
  Reader r(as_span(w.data()));
  MetricsSnapshot back = MetricsSnapshot::deserialize(r);
  r.expect_done();
  EXPECT_EQ(s, back);
  EXPECT_GT(s.latency_quantile_us(0.5), 0.0);
  EXPECT_FALSE(s.to_text().empty());
}

TEST(Metrics, TruncatedSnapshotRejected) {
  MetricsSnapshot s;
  Writer w;
  s.serialize(w);
  Bytes data = span_copy(as_span(w.data()));
  data.resize(data.size() / 2);
  Reader r(as_span(data));
  EXPECT_THROW(MetricsSnapshot::deserialize(r), SerializeError);
}

// Cached, fast-path, and uncached serving must be byte-identical across
// every design and request type — the cache must never change what a
// light node sees.
TEST(ServingEngine, ByteIdenticalWithAndWithoutCache) {
  for (Design design : {Design::kLvq, Design::kLvqNoSmt, Design::kLvqNoBmt,
                        Design::kStrawmanVariant}) {
    ProtocolConfig config{design, kGeom, 8};
    FullNode full(setup().workload, setup().derived, config);
    ServingEngineOptions cached_opts;
    cached_opts.workers = 2;
    cached_opts.cache_admit_min_us = 0;  // tiny chain: admit everything
    ServingEngineOptions uncached_opts;
    uncached_opts.workers = 2;
    uncached_opts.cache_bytes = 0;
    ServingEngine cached(full, cached_opts);
    ServingEngine uncached(full, uncached_opts);

    for (const Bytes& req : mixed_requests(full)) {
      Bytes direct = full.handle_message(as_span(req));
      // Two passes: the second one serves the cached engine from cache.
      for (int pass = 0; pass < 2; ++pass) {
        EXPECT_EQ(cached.handle(as_span(req)), direct)
            << design_name(design) << " pass " << pass;
        EXPECT_EQ(uncached.handle(as_span(req)), direct);
      }
    }
    MetricsSnapshot snap = cached.snapshot();
    EXPECT_GT(snap.cache_hits, 0u);
    EXPECT_EQ(snap.responses_error, 0u);
  }
}

// The engine's replies must verify on a light node exactly like the full
// node's own — the whole point of byte-identical serving.
TEST(ServingEngine, CachedRepliesVerifyOnLightNode) {
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode full(setup().workload, setup().derived, config);
  ServingEngineOptions opts;
  opts.cache_admit_min_us = 0;  // tiny chain: admit everything
  ServingEngine engine(full, opts);
  LoopbackTransport transport(
      [&](ByteSpan req) { return engine.handle(req); });
  LightNode light(config);
  ASSERT_TRUE(light.sync_headers(transport));
  for (const AddressProfile& p : setup().workload->profiles) {
    for (int pass = 0; pass < 2; ++pass) {  // second pass is cache-served
      auto result = light.query(transport, p.address);
      ASSERT_TRUE(result.outcome.ok) << result.outcome.detail;
      GroundTruth gt = scan_ground_truth(*setup().workload, p.address);
      EXPECT_EQ(result.outcome.history.total_txs(), gt.txs.size());
    }
  }
  EXPECT_GT(engine.snapshot().cache_hits, 0u);
}

TEST(ServingEngine, SegmentSubCacheServesRepeatQueries) {
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode full(setup().workload, setup().derived, config);
  ServingEngineOptions eng_opts;
  eng_opts.cache_admit_min_us = 0;  // tiny chain: admit everything
  ServingEngine engine(full, eng_opts);
  const Address addr = setup().workload->profiles[0].address;
  Bytes req = make_query_request(addr);

  Bytes first = engine.handle(as_span(req));
  MetricsSnapshot snap = engine.snapshot();
  EXPECT_GT(snap.segment_misses, 0u);
  EXPECT_EQ(snap.segment_hits, 0u);

  // Same request again: whole-response cache hit, segment cache untouched.
  EXPECT_EQ(engine.handle(as_span(req)), first);
  // New epoch, same chain: response cache cleared, but every segment key
  // still matches, so the reply is reassembled from cached segments.
  engine.invalidate();
  EXPECT_EQ(engine.handle(as_span(req)), first);
  snap = engine.snapshot();
  EXPECT_GT(snap.segment_hits, 0u);
}

TEST(ServingEngine, ConcurrentMixedTrafficIsConsistent) {
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode full(setup().workload, setup().derived, config);
  ServingEngineOptions opts;
  opts.workers = 4;
  opts.queue_depth = 256;
  ServingEngine engine(full, opts);

  std::vector<Bytes> reqs = mixed_requests(full);
  std::vector<Bytes> expected;
  for (const Bytes& r : reqs) expected.push_back(full.handle_message(as_span(r)));

  constexpr int kThreads = 8;
  constexpr int kRounds = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        std::size_t pick = (static_cast<std::size_t>(t) + i) % reqs.size();
        if (engine.handle(as_span(reqs[pick])) != expected[pick]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);

  MetricsSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.requests_total,
            static_cast<std::uint64_t>(kThreads) * kRounds);
  EXPECT_EQ(snap.responses_error, 0u);
  EXPECT_EQ(snap.rejected_busy + snap.latency_count, snap.requests_total);
}

// Chain growth and reorgs must never let a stale proof out of the cache.
TEST(ServingEngine, EpochInvalidationAcrossAppendAndReorg) {
  // Three chain states built from the same workload bodies: a 31-block
  // prefix, the full 32 blocks (pure append), and a 32-block chain whose
  // last block differs (reorg at equal height — the case a tip-height key
  // alone would get wrong).
  const auto& bodies = setup().workload->blocks;
  std::vector<std::vector<Transaction>> prefix(bodies.begin(),
                                               bodies.end() - 1);
  std::vector<std::vector<Transaction>> reorged(bodies);
  std::swap(reorged.back(), reorged.front());

  ExperimentSetup s1 = make_setup_from_blocks(prefix);
  ExperimentSetup s2 = make_setup_from_blocks(bodies);
  ExperimentSetup s3 = make_setup_from_blocks(std::move(reorged));

  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode node1(s1.workload, s1.derived, config);
  FullNode node2(s2.workload, s2.derived, config);
  FullNode node3(s3.workload, s3.derived, config);

  const Address addr = setup().workload->profiles[0].address;
  Bytes req = make_query_request(addr);

  ServingEngine engine(node1);
  EXPECT_EQ(engine.handle(as_span(req)), node1.handle_message(as_span(req)));
  EXPECT_EQ(engine.handle(as_span(req)), node1.handle_message(as_span(req)));

  // Append: tip advances; stable segments are reused, responses match the
  // new node exactly.
  engine.rebind(node2);
  std::uint64_t hits_before = engine.snapshot().segment_hits;
  Bytes r2 = engine.handle(as_span(req));
  EXPECT_EQ(r2, node2.handle_message(as_span(req)));
  EXPECT_GT(engine.snapshot().segment_hits, hits_before)
      << "stable segments should survive a pure append";

  // Reorg at the same height: same tip, different content. Cached bytes
  // for node2 must not leak out.
  engine.rebind(node3);
  Bytes r3 = engine.handle(as_span(req));
  EXPECT_EQ(r3, node3.handle_message(as_span(req)));
  EXPECT_EQ(engine.handle(as_span(req)), r3);
  EXPECT_EQ(node2.tip_height(), node3.tip_height());

  // And the reorged reply verifies against the reorged headers.
  LightNode light(config);
  light.set_headers(node3.headers());
  auto [type, payload] = decode_envelope(as_span(r3));
  ASSERT_EQ(type, MsgType::kQueryResponse);
  Reader pr(payload);
  QueryResponse resp = QueryResponse::deserialize(pr, config);
  EXPECT_TRUE(light.verify(addr, resp).ok);
}

// In-place growth: clients hammer the engine while the node's chain is
// extended underneath it (FullNode::append_blocks + no-arg rebind). Every
// reply must be byte-exact for SOME published chain state — the pre- or
// post-append tip — never a torn mix. Run under TSan in CI.
TEST(ServingEngine, AppendWhileServingStaysConsistent) {
  const auto& bodies = setup().workload->blocks;
  std::vector<std::vector<Transaction>> prefix(bodies.begin(),
                                               bodies.end() - 8);
  std::vector<std::vector<Transaction>> tail(bodies.end() - 8, bodies.end());

  ProtocolConfig config{Design::kLvq, kGeom, 8};
  ExperimentSetup s_old = make_setup_from_blocks(prefix);
  ExperimentSetup s_new = make_setup_from_blocks(bodies);
  FullNode ref_old(s_old.workload, s_old.derived, config);
  FullNode ref_new(s_new.workload, s_new.derived, config);

  std::vector<Bytes> requests, old_replies, new_replies;
  for (const AddressProfile& p : setup().workload->profiles) {
    requests.push_back(make_query_request(p.address));
    old_replies.push_back(ref_old.handle_message(as_span(requests.back())));
    new_replies.push_back(ref_new.handle_message(as_span(requests.back())));
  }

  FullNode live(s_old.workload, s_old.derived, config);
  ServingEngine engine(live);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::size_t i = static_cast<std::size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t a = i++ % requests.size();
        Bytes reply = engine.handle(as_span(requests[a]));
        if (reply != old_replies[a] && reply != new_replies[a]) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  live.append_blocks(std::move(tail));
  engine.rebind();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(torn.load(), 0u);
  // Settled state: replies are the post-append bytes and verify end to end.
  for (std::size_t a = 0; a < requests.size(); ++a) {
    EXPECT_EQ(engine.handle(as_span(requests[a])), new_replies[a]);
  }
  EXPECT_EQ(live.tip_height(), ref_new.tip_height());
  LightNode light(config);
  light.set_headers(live.headers());
  auto [type, payload] =
      decode_envelope(as_span(new_replies[0]));
  ASSERT_EQ(type, MsgType::kQueryResponse);
  Reader pr(payload);
  QueryResponse resp = QueryResponse::deserialize(pr, config);
  EXPECT_TRUE(light.verify(setup().workload->profiles[0].address, resp).ok);
}

// Concurrent appends must serialize cleanly: the final chain is the same
// regardless of which batch wins the race, because each batch extends
// whatever tip it observes under the append lock.
TEST(ServingEngine, ConcurrentAppendsSerialize) {
  const auto& bodies = setup().workload->blocks;
  std::vector<std::vector<Transaction>> prefix(bodies.begin(),
                                               bodies.end() - 8);
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  ExperimentSetup s_old = make_setup_from_blocks(prefix);
  FullNode live(s_old.workload, s_old.derived, config);

  std::vector<std::thread> writers;
  for (int c = 0; c < 4; ++c) {
    writers.emplace_back([&, c] {
      std::vector<std::vector<Transaction>> batch(
          bodies.begin() + (prefix.size() + 2 * c),
          bodies.begin() + (prefix.size() + 2 * c + 2));
      live.append_blocks(std::move(batch));
    });
  }
  for (std::thread& t : writers) t.join();
  // 4 batches of 2 blocks each landed, in some order; the tip moved by 8
  // and the chain links (append validates every prev_hash).
  EXPECT_EQ(live.tip_height(), prefix.size() + 8);
}

// Queue-full shedding: deterministic busy replies while the single worker
// is pinned, then recovery through RetryTransport's backoff.
TEST(ServingEngine, QueueFullShedsBusyAndRetryRecovers) {
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<int> entered{0};
  ServingEngineOptions opts;
  opts.workers = 1;
  opts.queue_depth = 1;
  opts.cache_bytes = 0;
  ServingEngine engine(
      [&](ByteSpan req) {
        entered.fetch_add(1);
        gate.wait();
        return span_copy(req);
      },
      opts);

  Bytes req = {42, 7};
  // Pin the worker.
  auto pinned = std::async(std::launch::async,
                           [&] { return engine.handle(as_span(req)); });
  while (entered.load() == 0) std::this_thread::yield();
  // Fill the one queue slot.
  auto queued = std::async(std::launch::async,
                           [&] { return engine.handle(as_span(req)); });
  while (engine.snapshot().queue_depth == 0) std::this_thread::yield();

  // Worker busy + queue full: an unwrapped request is shed immediately.
  Bytes shed = engine.handle(as_span(req));
  EXPECT_TRUE(is_busy_envelope(as_span(shed)));
  EXPECT_GE(engine.snapshot().rejected_busy, 1u);

  // A retrying client keeps backing off; once the gate opens, a later
  // attempt lands and succeeds.
  LoopbackTransport loop([&](ByteSpan r) { return engine.handle(r); });
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_ms = 2;
  policy.max_backoff_ms = 10;
  RetryTransport retrier(loop, policy);
  std::thread opener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    release.set_value();
  });
  Bytes via_retry = retrier.round_trip(as_span(req));
  EXPECT_EQ(via_retry, req);
  opener.join();
  EXPECT_EQ(pinned.get(), req);
  EXPECT_EQ(queued.get(), req);

  MetricsSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.rejected_busy + snap.latency_count, snap.requests_total);
}

TEST(ServingEngine, RetryTransportSurfacesExhaustedBusyAsTransportError) {
  // Every attempt is shed: the busy envelope must become a typed kBusy
  // TransportError once the retry budget runs out.
  LoopbackTransport always_busy(
      [](ByteSpan) { return encode_envelope(MsgType::kBusy, {}); });
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  RetryTransport retrier(always_busy, policy);
  Bytes req = {1};
  try {
    retrier.round_trip(as_span(req));
    FAIL() << "expected TransportError";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kBusy);
  }
  EXPECT_EQ(retrier.busy_rejections(), 3u);
  EXPECT_EQ(retrier.retries(), 2u);
}

TEST(ServingEngine, StatsRpcOverRealSockets) {
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode full(setup().workload, setup().derived, config);
  ServingEngineOptions opts;
  opts.workers = 2;
  opts.cache_admit_min_us = 0;  // tiny chain: admit everything
  ServingEngine engine(full, opts);
  TcpServer server([&](ByteSpan req) { return engine.handle(req); });

  TcpTransport client(server.port());
  const Address addr = setup().workload->profiles[0].address;
  Bytes qreq = make_query_request(addr);
  client.round_trip(as_span(qreq));
  client.round_trip(as_span(qreq));

  Bytes reply = client.round_trip(as_span(make_stats_request()));
  auto [type, payload] = decode_envelope(as_span(reply));
  ASSERT_EQ(type, MsgType::kStatsResponse);
  Reader r(payload);
  MetricsSnapshot snap = MetricsSnapshot::deserialize(r);
  r.expect_done();
  EXPECT_EQ(snap.workers, 2u);
  EXPECT_EQ(snap.requests_by_type[static_cast<std::size_t>(
                MsgType::kQueryRequest)],
            2u);
  EXPECT_GE(snap.cache_hits, 1u);
  EXPECT_EQ(snap.epoch_tip, full.tip_height());
  EXPECT_FALSE(snap.to_text().empty());
}

TEST(TcpServer, MaxConnectionsShedsWithBusyFrame) {
  TcpServerOptions opts;
  opts.max_connections = 1;
  TcpServer server([](ByteSpan req) { return Bytes(req.begin(), req.end()); },
                   opts);

  std::optional<TcpTransport> first;
  first.emplace(server.port());
  Bytes msg = {1, 2, 3};
  EXPECT_EQ(first->round_trip(as_span(msg)), msg);  // occupies the one slot

  // The second connection is shed at accept: either the busy frame
  // arrives, or the close races the request write into a typed transport
  // error — never a hang, never a served request.
  TcpTransportOptions copts;
  copts.io_timeout_ms = 2'000;
  copts.auto_reconnect = false;
  TcpTransport second(server.port(), copts);
  try {
    Bytes reply = second.round_trip(as_span(msg));
    EXPECT_TRUE(is_busy_envelope(as_span(reply)));
  } catch (const TransportError& e) {
    EXPECT_NE(e.kind(), TransportError::kTimeout);
  }
  // The shed counter is bumped just after the busy frame is written; poll
  // briefly rather than racing the accept loop.
  const auto shed_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.connections_shed() == 0 &&
         std::chrono::steady_clock::now() < shed_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.connections_shed(), 1u);

  // Capacity frees once the first client goes away (its worker is reaped
  // on a later accept, so retry until the slot opens up).
  first.reset();
  Bytes reply;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    try {
      TcpTransport retry(server.port());
      reply = retry.round_trip(as_span(msg));
      if (reply == msg) break;
    } catch (const TransportError&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(reply, msg);
}

// Short mixed-traffic soak against the pooled server over real sockets,
// FlakyServer-style client mix. CI raises LVQ_SOAK_MS.
TEST(ServingEngineSoak, MixedTrafficUnderLoad) {
  std::uint64_t soak_ms = 1'000;
  if (const char* env = std::getenv("LVQ_SOAK_MS")) {
    soak_ms = std::strtoull(env, nullptr, 10);
  }
  ProtocolConfig config{Design::kLvq, kGeom, 8};
  FullNode full(setup().workload, setup().derived, config);
  ServingEngineOptions opts;
  opts.workers = 4;
  opts.queue_depth = 8;
  ServingEngine engine(full, opts);
  TcpServerOptions sopts;
  sopts.max_connections = 32;
  TcpServer server([&](ByteSpan req) { return engine.handle(req); }, sopts);

  std::vector<Address> addrs;
  for (const AddressProfile& p : setup().workload->profiles) {
    addrs.push_back(p.address);
  }

  constexpr int kClients = 6;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TcpTransport socket(server.port());
      RetryPolicy policy;
      policy.max_attempts = 6;
      policy.initial_backoff_ms = 1;
      policy.max_backoff_ms = 20;
      policy.seed = static_cast<std::uint64_t>(c) + 1;
      RetryTransport transport(socket, policy);
      LightNode light(config);
      if (!light.sync_headers(transport)) {
        failed.fetch_add(1);
        return;
      }
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(soak_ms);
      std::uint64_t i = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        ++i;
        try {
          switch (i % 4) {
            case 0: {
              auto r = light.query(transport, addrs[i % addrs.size()]);
              r.outcome.ok ? ok.fetch_add(1) : failed.fetch_add(1);
              break;
            }
            case 1: {
              auto r = light.query_range(transport, addrs[i % addrs.size()],
                                         3, 17);
              r.outcome.ok ? ok.fetch_add(1) : failed.fetch_add(1);
              break;
            }
            case 2: {
              auto r = light.query_multi(transport, addrs);
              bool all = true;
              for (const auto& o : r.outcomes) all = all && o.ok;
              all ? ok.fetch_add(1) : failed.fetch_add(1);
              break;
            }
            case 3: {
              Bytes reply = transport.round_trip(as_span(make_stats_request()));
              auto [type, payload] = decode_envelope(as_span(reply));
              if (type == MsgType::kStatsResponse) {
                Reader r(payload);
                (void)MetricsSnapshot::deserialize(r);
                ok.fetch_add(1);
              } else {
                failed.fetch_add(1);
              }
              break;
            }
          }
        } catch (const TransportError&) {
          // kBusy exhaustion under overload is legitimate shedding, not a
          // correctness failure; anything else would also surface in the
          // failed counter staying nonzero across the whole soak.
          failed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(failed.load(), 0u);
  MetricsSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.responses_error, 0u);
  EXPECT_EQ(snap.rejected_busy + snap.latency_count, snap.requests_total);
  std::uint64_t by_type_sum = 0;
  for (std::uint64_t v : snap.requests_by_type) by_type_sum += v;
  EXPECT_EQ(by_type_sum, snap.requests_total);
}

}  // namespace
}  // namespace lvq
