// Tests for the Sorted Merkle Tree (paper §III-A, §IV-B2): inclusion
// branches, predecessor/successor absence proofs, and forgery resistance.
#include <gtest/gtest.h>

#include <algorithm>

#include "merkle/sorted_merkle_tree.hpp"
#include "util/rng.hpp"

namespace lvq {
namespace {

Address addr(std::uint64_t v) {
  Writer w;
  w.u64(v);
  return Address::derive(ByteSpan{w.data().data(), w.data().size()});
}

/// n distinct addresses, sorted, with counts 1 + (i % 3).
std::vector<SmtLeaf> make_leaves(std::size_t n, std::uint64_t salt = 0) {
  std::vector<SmtLeaf> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(SmtLeaf{addr(salt * 100000 + i), 1 + static_cast<std::uint32_t>(i % 3)});
  }
  std::sort(out.begin(), out.end(),
            [](const SmtLeaf& a, const SmtLeaf& b) { return a.address < b.address; });
  return out;
}

TEST(SmtLeaf, HashCoversCount) {
  SmtLeaf a{addr(1), 1};
  SmtLeaf b{addr(1), 2};
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Smt, ConstructionRequiresSortedUnique) {
  auto leaves = make_leaves(4);
  std::swap(leaves[0], leaves[1]);
  EXPECT_THROW(SortedMerkleTree{leaves}, std::logic_error);
  auto dup = make_leaves(4);
  dup[1] = dup[0];
  EXPECT_THROW(SortedMerkleTree{dup}, std::logic_error);
}

TEST(Smt, ConstructionRequiresPositiveCounts) {
  auto leaves = make_leaves(2);
  leaves[0].count = 0;
  EXPECT_THROW(SortedMerkleTree{leaves}, std::logic_error);
}

TEST(Smt, EmptyTreeCommitment) {
  SortedMerkleTree tree{std::vector<SmtLeaf>{}};
  EXPECT_EQ(tree.commitment(), SortedMerkleTree::empty_commitment());
  EXPECT_EQ(tree.size(), 0u);
}

TEST(Smt, CommitmentDependsOnSize) {
  // Two trees over different leaf counts can never share a commitment
  // (the commitment hashes tree_size) — this is what makes "index n-1 is
  // the last leaf" a verifiable statement.
  SortedMerkleTree a{make_leaves(3)};
  SortedMerkleTree b{make_leaves(4)};
  EXPECT_NE(a.commitment(), b.commitment());
}

TEST(Smt, FindLocatesEveryLeaf) {
  auto leaves = make_leaves(20);
  SortedMerkleTree tree{leaves};
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto idx = tree.find(leaves[i].address);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, i);
  }
  EXPECT_FALSE(tree.find(addr(999999)).has_value());
}

class SmtBranchSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SmtBranchSweep, EveryBranchVerifies) {
  std::size_t n = GetParam();
  auto leaves = make_leaves(n, n);
  SortedMerkleTree tree{leaves};
  for (std::uint64_t i = 0; i < n; ++i) {
    SmtBranch b = tree.branch(i);
    EXPECT_EQ(b.tree_size, n);
    EXPECT_EQ(b.index, i);
    EXPECT_TRUE(SortedMerkleTree::verify_branch(b, tree.commitment()))
        << "leaf " << i << " of " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SmtBranchSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16,
                                           17, 31, 32, 33, 100));

TEST(SmtBranch, TamperedCountFails) {
  SortedMerkleTree tree{make_leaves(10)};
  SmtBranch b = tree.branch(4);
  b.leaf.count += 1;
  EXPECT_FALSE(SortedMerkleTree::verify_branch(b, tree.commitment()));
}

TEST(SmtBranch, TamperedAddressFails) {
  SortedMerkleTree tree{make_leaves(10)};
  SmtBranch b = tree.branch(4);
  b.leaf.address = addr(424242);
  EXPECT_FALSE(SortedMerkleTree::verify_branch(b, tree.commitment()));
}

TEST(SmtBranch, WrongIndexFails) {
  SortedMerkleTree tree{make_leaves(10)};
  SmtBranch b = tree.branch(4);
  b.index = 5;
  EXPECT_FALSE(SortedMerkleTree::verify_branch(b, tree.commitment()));
}

TEST(SmtBranch, WrongTreeSizeFails) {
  SortedMerkleTree tree{make_leaves(10)};
  SmtBranch b = tree.branch(4);
  b.tree_size = 11;
  EXPECT_FALSE(SortedMerkleTree::verify_branch(b, tree.commitment()));
}

TEST(SmtBranch, PathLengthMismatchFails) {
  SortedMerkleTree tree{make_leaves(10)};
  SmtBranch b = tree.branch(4);
  b.path.pop_back();
  EXPECT_FALSE(SortedMerkleTree::verify_branch(b, tree.commitment()));
  SmtBranch c = tree.branch(4);
  c.path.push_back(c.path.back());
  EXPECT_FALSE(SortedMerkleTree::verify_branch(c, tree.commitment()));
}

TEST(SmtBranch, IndexBeyondTreeFails) {
  SortedMerkleTree tree{make_leaves(4)};
  SmtBranch b = tree.branch(3);
  b.index = 4;  // == tree_size
  EXPECT_FALSE(SortedMerkleTree::verify_branch(b, tree.commitment()));
}

TEST(SmtBranch, SerializeRoundTrip) {
  SortedMerkleTree tree{make_leaves(13)};
  SmtBranch b = tree.branch(7);
  Writer w;
  b.serialize(w);
  EXPECT_EQ(w.size(), b.serialized_size());
  Reader r(ByteSpan{w.data().data(), w.data().size()});
  SmtBranch back = SmtBranch::deserialize(r);
  EXPECT_TRUE(SortedMerkleTree::verify_branch(back, tree.commitment()));
  EXPECT_EQ(back.leaf, b.leaf);
}

// --- absence proofs ---

class SmtAbsenceSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SmtAbsenceSweep, AbsentAddressesProvable) {
  std::size_t n = GetParam();
  auto leaves = make_leaves(n, 3 * n + 1);
  SortedMerkleTree tree{leaves};
  Rng rng(n);
  int proved = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Address probe = addr(10'000'000 + rng.below(1'000'000));
    if (tree.find(probe).has_value()) continue;
    SmtAbsenceProof proof = tree.absence_proof(probe);
    EXPECT_TRUE(SortedMerkleTree::verify_absence(proof, probe, tree.commitment()))
        << "n=" << n << " trial=" << trial;
    proved++;
  }
  EXPECT_GT(proved, 40);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SmtAbsenceSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 100));

TEST(SmtAbsence, EmptyTree) {
  SortedMerkleTree tree{std::vector<SmtLeaf>{}};
  SmtAbsenceProof proof = tree.absence_proof(addr(1));
  EXPECT_EQ(proof.kind, SmtAbsenceProof::Kind::kEmptyTree);
  EXPECT_TRUE(SortedMerkleTree::verify_absence(proof, addr(1), tree.commitment()));
  // Claiming "empty tree" against a non-empty commitment must fail.
  SortedMerkleTree real{make_leaves(3)};
  EXPECT_FALSE(SortedMerkleTree::verify_absence(proof, addr(1), real.commitment()));
}

TEST(SmtAbsence, BoundaryKindsAreCorrect) {
  auto leaves = make_leaves(10);
  SortedMerkleTree tree{leaves};
  Address below{};  // all-zero address sorts before every derived address
  Address above;
  above.id.bytes.fill(0xff);
  EXPECT_EQ(tree.absence_proof(below).kind, SmtAbsenceProof::Kind::kBeforeFirst);
  EXPECT_EQ(tree.absence_proof(above).kind, SmtAbsenceProof::Kind::kAfterLast);
  EXPECT_TRUE(SortedMerkleTree::verify_absence(tree.absence_proof(below), below,
                                               tree.commitment()));
  EXPECT_TRUE(SortedMerkleTree::verify_absence(tree.absence_proof(above), above,
                                               tree.commitment()));
}

TEST(SmtAbsence, PresentAddressRejectedByPrecondition) {
  auto leaves = make_leaves(5);
  SortedMerkleTree tree{leaves};
  EXPECT_THROW(tree.absence_proof(leaves[2].address), std::logic_error);
}

TEST(SmtAbsence, OrderingViolationRejected) {
  // A proof whose interval does not contain the probe address must fail.
  auto leaves = make_leaves(10);
  SortedMerkleTree tree{leaves};
  // Probe strictly between leaves[3] and leaves[4]? Construct a "between"
  // proof for that gap, then verify against leaves[5].address (inside the
  // tree) — must fail on ordering.
  SmtAbsenceProof proof;
  proof.kind = SmtAbsenceProof::Kind::kBetween;
  proof.predecessor = tree.branch(3);
  proof.successor = tree.branch(4);
  EXPECT_FALSE(SortedMerkleTree::verify_absence(proof, leaves[5].address,
                                                tree.commitment()));
}

TEST(SmtAbsence, NonAdjacentBranchesRejected) {
  // Leaves 3 and 5 both verify, but they are not adjacent: the gap hides
  // leaf 4. The adjacency check must catch this.
  auto leaves = make_leaves(10);
  SortedMerkleTree tree{leaves};
  // Pick a probe between leaves[3] and leaves[5] — namely leaves[4]'s
  // address, which IS in the tree (the attack scenario: server hides it).
  SmtAbsenceProof proof;
  proof.kind = SmtAbsenceProof::Kind::kBetween;
  proof.predecessor = tree.branch(3);
  proof.successor = tree.branch(5);
  EXPECT_FALSE(SortedMerkleTree::verify_absence(proof, leaves[4].address,
                                                tree.commitment()));
}

TEST(SmtAbsence, BeforeFirstRequiresIndexZero) {
  auto leaves = make_leaves(10);
  SortedMerkleTree tree{leaves};
  Address below{};
  SmtAbsenceProof proof;
  proof.kind = SmtAbsenceProof::Kind::kBeforeFirst;
  proof.successor = tree.branch(1);  // not the first leaf!
  EXPECT_FALSE(SortedMerkleTree::verify_absence(proof, below, tree.commitment()));
}

TEST(SmtAbsence, AfterLastRequiresLastIndex) {
  auto leaves = make_leaves(10);
  SortedMerkleTree tree{leaves};
  Address above;
  above.id.bytes.fill(0xff);
  SmtAbsenceProof proof;
  proof.kind = SmtAbsenceProof::Kind::kAfterLast;
  proof.predecessor = tree.branch(7);  // hides leaves 8, 9
  EXPECT_FALSE(SortedMerkleTree::verify_absence(proof, above, tree.commitment()));
}

TEST(SmtAbsence, MissingBranchesRejected) {
  auto leaves = make_leaves(4);
  SortedMerkleTree tree{leaves};
  SmtAbsenceProof proof;
  proof.kind = SmtAbsenceProof::Kind::kBetween;
  proof.predecessor = tree.branch(1);
  // successor missing
  EXPECT_FALSE(SortedMerkleTree::verify_absence(proof, addr(123), tree.commitment()));
}

TEST(SmtAbsence, SerializeRoundTripAllKinds) {
  auto leaves = make_leaves(10, 55);
  SortedMerkleTree tree{leaves};
  Address below{};
  Address above;
  above.id.bytes.fill(0xff);
  Rng rng(55);
  Address middle = addr(10'000'000);
  for (const Address& probe : {below, above, middle}) {
    if (tree.find(probe).has_value()) continue;
    SmtAbsenceProof proof = tree.absence_proof(probe);
    Writer w;
    proof.serialize(w);
    EXPECT_EQ(w.size(), proof.serialized_size());
    Reader r(ByteSpan{w.data().data(), w.data().size()});
    SmtAbsenceProof back = SmtAbsenceProof::deserialize(r);
    EXPECT_TRUE(SortedMerkleTree::verify_absence(back, probe, tree.commitment()));
  }
}

TEST(Smt, LeavesAreSortedInvariant) {
  // Cross-check against the paper's Fig. 9 picture: every adjacent pair
  // really is an interval of the address space.
  auto leaves = make_leaves(64, 9);
  SortedMerkleTree tree{leaves};
  for (std::size_t i = 1; i < leaves.size(); ++i) {
    EXPECT_LT(tree.leaves()[i - 1].address, tree.leaves()[i].address);
  }
}

}  // namespace
}  // namespace lvq
