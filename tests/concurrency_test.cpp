// A full node serves many light clients concurrently; every query path is
// const over immutable chain state, so parallel queries must be safe and
// deterministic. (On a 1-core machine this still exercises interleaving
// via preemption.)
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "node/session.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

TEST(Concurrency, ParallelQueriesMatchSerialResults) {
  WorkloadConfig c;
  c.seed = 4444;
  c.num_blocks = 48;
  c.background_txs_per_block = 8;
  c.profiles = {{"a", 6, 4}, {"b", 12, 8}, {"c", 0, 0}, {"d", 3, 3}};
  ExperimentSetup setup = make_setup(c);
  ProtocolConfig config{Design::kLvq, BloomGeometry{256, 8}, 16};
  FullNode full(setup.workload, setup.derived, config);

  // Serial reference.
  std::vector<std::uint64_t> expect_sizes;
  for (const AddressProfile& p : setup.workload->profiles) {
    Writer w;
    full.query(p.address).serialize(w);
    expect_sizes.push_back(w.size());
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Each thread runs its own light node against the shared full node.
      LightNode light(config);
      light.set_headers(full.headers());
      for (int round = 0; round < kRounds; ++round) {
        std::size_t i = static_cast<std::size_t>((t + round) %
                                                 setup.workload->profiles.size());
        const AddressProfile& p = setup.workload->profiles[i];
        QueryResponse resp = full.query(p.address);
        Writer w;
        resp.serialize(w);
        if (w.size() != expect_sizes[i]) mismatches++;
        VerifyOutcome out = light.verify(p.address, resp);
        if (!out.ok) mismatches++;
        GroundTruth gt = scan_ground_truth(*setup.workload, p.address);
        if (out.history.total_txs() != gt.txs.size()) mismatches++;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace lvq
