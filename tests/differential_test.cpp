// Differential property tests: many random (workload, geometry, design,
// segment-length) combinations, each run through the full wire path and
// compared against a ground-truth scan. This is the broadest net in the
// suite — anything the targeted tests miss tends to surface here first.
#include <gtest/gtest.h>

#include <set>

#include "node/session.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

struct Scenario {
  std::uint64_t seed;
};

class RandomizedE2E : public ::testing::TestWithParam<Scenario> {};

TEST_P(RandomizedE2E, AllDesignsMatchGroundTruth) {
  Rng rng(GetParam().seed);

  WorkloadConfig c;
  c.seed = rng.next_u64();
  c.num_blocks = static_cast<std::uint32_t>(rng.range(3, 70));
  c.background_txs_per_block = static_cast<std::uint32_t>(rng.range(2, 12));
  std::uint32_t pb = static_cast<std::uint32_t>(
      rng.range(0, std::min<std::uint64_t>(c.num_blocks, 20)));
  std::uint32_t pt = pb + static_cast<std::uint32_t>(rng.range(0, 10));
  if (pb == 0) pt = 0;
  c.profiles = {{"p", pt, pb}, {"ghost", 0, 0}};
  ExperimentSetup setup = make_setup(c);

  // Random geometry: sometimes roomy, sometimes brutally saturated.
  BloomGeometry geom{
      static_cast<std::uint32_t>(rng.range(16, 600)),
      static_cast<std::uint32_t>(rng.range(1, 16)),
  };
  std::uint32_t m = std::uint32_t{1} << rng.range(0, 7);

  for (Design design : {Design::kStrawman, Design::kStrawmanVariant,
                        Design::kLvqNoBmt, Design::kLvqNoSmt, Design::kLvq}) {
    ProtocolConfig config{design, geom, m};
    QuerySession session(setup, config);
    for (const AddressProfile& p : setup.workload->profiles) {
      auto result = session.query(p.address);
      ASSERT_TRUE(result.outcome.ok)
          << design_name(design) << " blocks=" << c.num_blocks
          << " bf=" << geom.size_bytes << " k=" << geom.hash_count
          << " m=" << m << " " << p.label << ": "
          << verify_error_name(result.outcome.error) << " — "
          << result.outcome.detail;

      GroundTruth gt = scan_ground_truth(*setup.workload, p.address);
      std::set<std::pair<std::uint64_t, Hash256>> expect(gt.txs.begin(),
                                                         gt.txs.end());
      std::set<std::pair<std::uint64_t, Hash256>> got;
      for (const VerifiedBlockTxs& b : result.outcome.history.blocks) {
        for (const Transaction& tx : b.txs) got.emplace(b.height, tx.txid());
      }
      ASSERT_EQ(got, expect)
          << design_name(design) << " " << p.label << " seed "
          << GetParam().seed;
      ASSERT_EQ(result.outcome.history.balance(), gt.balance);
      // Exact wire-size accounting must hold in every configuration.
      ASSERT_EQ(result.breakdown.total() + 1, result.response_bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomizedE2E,
    ::testing::Values(Scenario{1}, Scenario{2}, Scenario{3}, Scenario{4},
                      Scenario{5}, Scenario{6}, Scenario{7}, Scenario{8},
                      Scenario{9}, Scenario{10}, Scenario{11}, Scenario{12}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace lvq
