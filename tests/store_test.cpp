// DiskChainStore tests — the persistence contract behind `lvqtool --store`.
//
// The load-bearing properties, in order:
//   1. Byte identity: a context reopened from disk serves exactly the
//      bytes an all-RAM build of the same blocks serves — single, range,
//      and multi/batch responses, for every design — and stays
//      byte-identical after appending through the reopened store.
//   2. Crash recovery: a process killed at ANY durability point leaves a
//      store that reopens to the last committed tip and accepts the
//      resumed append. No timing dependence — kill points are counted
//      deterministically (LVQ_STORE_KILL_AT).
//   3. Corruption handling: torn uncommitted tails vanish, a damaged
//      newest commit falls back exactly one commit, damage beneath the
//      last good commit is fatal, and segbf damage — exempt from the
//      reopen CRC walk by the lazy page-in design — is caught offline by
//      verify_checksums().
//   4. Format stability: the golden fixture stores under
//      tests/data/store_golden pin the on-disk layout per design; any
//      unversioned layout change fails loudly here.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/chain_builder.hpp"
#include "core/multi_query.hpp"
#include "core/proof_index.hpp"
#include "core/prover.hpp"
#include "core/range_query.hpp"
#include "node/session.hpp"
#include "store/disk_chain_store.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

constexpr Design kAllDesigns[] = {Design::kStrawman, Design::kStrawmanVariant,
                                  Design::kLvqNoBmt, Design::kLvqNoSmt,
                                  Design::kLvq};

ExperimentSetup test_setup(std::uint32_t blocks, std::uint64_t seed = 515) {
  WorkloadConfig c;
  c.seed = seed;
  c.num_blocks = blocks;
  c.background_txs_per_block = 6;
  c.profiles = {{"busy", 9, 6}, {"rare", 2, 2}, {"ghost", 0, 0}};
  return make_setup(c);
}

std::shared_ptr<Workload> prefix_workload(const Workload& all,
                                          std::size_t blocks) {
  auto w = std::make_shared<Workload>();
  w->blocks.assign(all.blocks.begin(), all.blocks.begin() + blocks);
  return w;
}

std::vector<std::vector<Transaction>> tail_blocks(const Workload& all,
                                                  std::size_t from) {
  return {all.blocks.begin() + from, all.blocks.end()};
}

std::vector<Address> query_addresses(const Workload& w) {
  std::vector<Address> out;
  for (const AddressProfile& p : w.profiles) out.push_back(p.address);
  out.push_back(Address::derive(str_bytes("store-test-never-on-chain")));
  return out;
}

Bytes query_bytes(const ChainContext& ctx, const Address& a) {
  Writer w;
  build_query_response(ctx, a).serialize(w);
  return w.take();
}

Bytes range_bytes(const ChainContext& ctx, const Address& a,
                  std::uint64_t from, std::uint64_t to) {
  Writer w;
  build_range_response(ctx, a, from, to).serialize(w);
  return w.take();
}

Bytes multi_bytes(const ChainContext& ctx, const std::vector<Address>& as) {
  Writer w;
  build_multi_response(ctx, as).serialize(w);
  return w.take();
}

Bytes header_bytes(const ChainContext& ctx) {
  Writer w;
  for (const BlockHeader& h : ctx.headers()) h.serialize(w);
  return w.take();
}

/// Full response-byte identity: headers, every single query, a range, and
/// one multi/batch response covering all addresses at once.
void expect_same_bytes(const ChainContext& want, const ChainContext& got,
                       const std::vector<Address>& addrs, const char* tag) {
  ASSERT_EQ(want.tip_height(), got.tip_height()) << tag;
  EXPECT_EQ(header_bytes(want), header_bytes(got)) << tag << " headers";
  const std::uint64_t tip = want.tip_height();
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    EXPECT_EQ(query_bytes(want, addrs[i]), query_bytes(got, addrs[i]))
        << tag << " query addr " << i;
    EXPECT_EQ(range_bytes(want, addrs[i], 2, tip - 1),
              range_bytes(got, addrs[i], 2, tip - 1))
        << tag << " range addr " << i;
  }
  EXPECT_EQ(multi_bytes(want, addrs), multi_bytes(got, addrs))
      << tag << " multi/batch";
}

void remove_store_dir(const std::string& dir) {
  ::unlink((dir + "/superblock").c_str());
  for (std::uint32_t c = 0; c < kColumnCount; ++c) {
    ::unlink((dir + "/" + column_name(c) + ".col").c_str());
  }
  ::rmdir(dir.c_str());
}

struct TempDir {
  std::string path;
  TempDir() {
    char buf[] = "/tmp/lvq_store_test_XXXXXX";
    const char* p = ::mkdtemp(buf);
    LVQ_CHECK_MSG(p != nullptr, "mkdtemp failed");
    path = p;
  }
  ~TempDir() { remove_store_dir(path); }
};

std::string column_path(const std::string& dir, std::uint32_t id) {
  return dir + "/" + std::string(column_name(id)) + ".col";
}

std::uint64_t file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

Bytes read_file(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return {};
  Bytes out(file_size(path));
  std::size_t off = 0;
  while (off < out.size()) {
    ssize_t r = ::read(fd, out.data() + off, out.size() - off);
    if (r <= 0) break;
    off += static_cast<std::size_t>(r);
  }
  ::close(fd);
  return out;
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0) << path;
  std::uint8_t b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, static_cast<off_t>(offset)), 1) << path;
  b ^= 0x01;
  ASSERT_EQ(::pwrite(fd, &b, 1, static_cast<off_t>(offset)), 1) << path;
  ::close(fd);
}

void append_garbage(const std::string& path, std::size_t n) {
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0) << path;
  Bytes junk(n, 0xAB);
  ASSERT_EQ(::write(fd, junk.data(), junk.size()), static_cast<ssize_t>(n));
  ::close(fd);
}

std::uint64_t column_records(const DiskChainStore::Info& info,
                             const std::string& name) {
  for (const auto& c : info.columns) {
    if (c.name == name) return c.records;
  }
  return ~0ull;
}

// ---------------------------------------------------------------------
// 1. Byte identity across every design, through reopen and append.
// ---------------------------------------------------------------------

TEST(StoreReopen, ByteIdenticalAcrossDesignsThroughReopenAndAppend) {
  const ExperimentSetup setup = test_setup(27);
  const std::vector<Address> addrs = query_addresses(*setup.workload);
  auto base_workload = prefix_workload(*setup.workload, 22);

  for (Design design : kAllDesigns) {
    SCOPED_TRACE(design_name(design));
    ProtocolConfig config{design, BloomGeometry{128, 4}, 4};
    TempDir tmp;

    Hash256 built_tip_hash;
    {
      auto store = DiskChainStore::open(tmp.path, config);
      ChainBuildOptions with_store;
      with_store.store = store.get();
      auto ram = ChainBuilder::build(base_workload, config, with_store);
      built_tip_hash = ram->chain().at_height(22).header.hash();
      EXPECT_EQ(store->tip_height(), 22u);
      EXPECT_EQ(store->tip_hash().hex(), built_tip_hash.hex());
    }

    // Reopen: the loaded context must serve exactly the all-RAM bytes.
    auto store = DiskChainStore::open(tmp.path, config);
    EXPECT_EQ(store->tip_height(), 22u);
    auto loaded = store->load_context();
    ASSERT_NE(loaded, nullptr);
    auto ram22 = ChainBuilder::build(base_workload, config);
    EXPECT_EQ(loaded->proof_index() != nullptr,
              ram22->proof_index() != nullptr);
    expect_same_bytes(*ram22, *loaded, addrs, "reopen");

    // Append THROUGH the reopened store: persisted records are replayed
    // idempotently, only the new heights land on disk.
    ChainBuildOptions with_store;
    with_store.store = store.get();
    auto grown = loaded->extend(tail_blocks(*setup.workload, 22), with_store);
    EXPECT_EQ(store->tip_height(), 27u);
    auto ram27 = ChainBuilder::build(setup.workload, config);
    expect_same_bytes(*ram27, *grown, addrs, "post-append");

    // Second reopen sees the appended chain, still byte-identical, and
    // every committed record checksums clean.
    store.reset();
    auto store2 = DiskChainStore::open(tmp.path, config);
    EXPECT_EQ(store2->tip_height(), 27u);
    auto loaded27 = store2->load_context();
    ASSERT_NE(loaded27, nullptr);
    expect_same_bytes(*ram27, *loaded27, addrs, "reopen-after-append");
    std::string err;
    EXPECT_TRUE(store2->verify_checksums(&err)) << err;

    // The loaded context must outlive the store object (mmap views hold
    // shared ownership of their mappings).
    store2.reset();
    EXPECT_EQ(query_bytes(*ram27, addrs[0]), query_bytes(*loaded27, addrs[0]));
  }
}

TEST(StoreReopen, InfoReportsCommittedState) {
  const ExperimentSetup setup = test_setup(8);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  TempDir tmp;
  {
    auto store = DiskChainStore::open(tmp.path, config);
    ChainBuildOptions o;
    o.store = store.get();
    (void)ChainBuilder::build(setup.workload, config, o);
  }
  auto store = DiskChainStore::open(
      tmp.path, config, DiskChainStore::Options{/*read_only=*/true, {}});
  DiskChainStore::Info info = store->info();
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.seqno, 2u);  // fresh store is seqno 1, one commit later
  EXPECT_EQ(info.tip_height, 8u);
  EXPECT_EQ(info.config.design, Design::kLvq);
  EXPECT_EQ(column_records(info, "blocks"), 8u);
  EXPECT_EQ(column_records(info, "derived"), 8u);
  EXPECT_EQ(column_records(info, "positions"), 8u);
  EXPECT_EQ(column_records(info, "bmt"), 2u);      // 8 blocks / M=4
  EXPECT_EQ(column_records(info, "blockidx"), 8u);
  EXPECT_EQ(column_records(info, "segbf"), 2u);
  EXPECT_GT(info.total_bytes, 0u);
}

TEST(StoreReopen, EmptyStoreLoadsNoContext) {
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  TempDir tmp;
  auto store = DiskChainStore::open(tmp.path, config);
  EXPECT_EQ(store->tip_height(), 0u);
  EXPECT_EQ(store->load_context(), nullptr);
}

// ---------------------------------------------------------------------
// 2. Crash recovery at every kill point.
// ---------------------------------------------------------------------

// Each build/extend passes 7 durability points: 5 stage flushes (derived,
// positions, bmt, proof-index, blocks) and 2 inside commit (columns
// synced / new superblock slot durable).
constexpr int kKillPointsPerCommit = 7;

TEST(StoreCrash, EveryKillPointRecoversToACommittedTip) {
  const ExperimentSetup setup = test_setup(12, /*seed=*/77);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  auto base_workload = prefix_workload(*setup.workload, 8);
  const std::vector<Address> addrs = query_addresses(*setup.workload);

  auto ram8 = ChainBuilder::build(base_workload, config);
  auto ram12 = ChainBuilder::build(setup.workload, config);

  for (int kill = 1; kill <= kKillPointsPerCommit + 1; ++kill) {
    SCOPED_TRACE("kill point " + std::to_string(kill));
    TempDir tmp;
    {
      // Seed the store with a committed tip-8 chain (no kill injection —
      // the env var is only set in the child).
      auto store = DiskChainStore::open(tmp.path, config);
      ChainBuildOptions o;
      o.store = store.get();
      o.threads = 1;
      (void)ChainBuilder::build(base_workload, config, o);
      ASSERT_EQ(store->tip_height(), 8u);
    }

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: extend 8 -> 12 through the store and die at the injected
      // point. Strictly serial — pool threads do not survive fork().
      ::setenv("LVQ_STORE_KILL_AT", std::to_string(kill).c_str(), 1);
      try {
        auto store = DiskChainStore::open(tmp.path, config);
        auto ctx = store->load_context();
        if (ctx == nullptr || ctx->tip_height() != 8) ::_exit(3);
        ChainBuildOptions o;
        o.store = store.get();
        o.threads = 1;
        (void)ctx->extend(tail_blocks(*setup.workload, 8), o);
        ::_exit(0);
      } catch (...) {
        ::_exit(4);
      }
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    const int code = WEXITSTATUS(status);
    // 42 = killed at the injected point; 0 = the extend outran the
    // injection (kill > number of points). Anything else is a child bug.
    ASSERT_TRUE(code == 42 || code == 0) << "child exited " << code;
    EXPECT_EQ(code == 42, kill <= kKillPointsPerCommit);

    // Recovery: every kill before the superblock write leaves tip 8;
    // from the moment the new slot is durable the store owns tip 12.
    auto store = DiskChainStore::open(tmp.path, config);
    const std::uint64_t tip = store->tip_height();
    EXPECT_EQ(tip, kill <= kKillPointsPerCommit - 1 ? 8u : 12u);
    auto loaded = store->load_context();
    ASSERT_NE(loaded, nullptr);
    const ChainContext& want = (tip == 8) ? *ram8 : *ram12;
    EXPECT_EQ(query_bytes(want, addrs[0]), query_bytes(*loaded, addrs[0]));
    std::string err;
    EXPECT_TRUE(store->verify_checksums(&err)) << err;

    // The recovered store accepts the resumed append and converges on
    // the same bytes as the uninterrupted chain.
    if (tip == 8) {
      ChainBuildOptions o;
      o.store = store.get();
      auto grown = loaded->extend(tail_blocks(*setup.workload, 8), o);
      EXPECT_EQ(store->tip_height(), 12u);
      expect_same_bytes(*ram12, *grown, addrs, "resumed append");
    }
  }
}

// ---------------------------------------------------------------------
// 3. Torn tails, corrupt commits, config mismatches.
// ---------------------------------------------------------------------

TEST(StoreRecovery, TornUncommittedTailIsDiscarded) {
  const ExperimentSetup setup = test_setup(8);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  const std::vector<Address> addrs = query_addresses(*setup.workload);
  TempDir tmp;
  {
    auto store = DiskChainStore::open(tmp.path, config);
    ChainBuildOptions o;
    o.store = store.get();
    (void)ChainBuilder::build(setup.workload, config, o);
  }
  DiskChainStore::Info committed;
  {
    auto store = DiskChainStore::open(tmp.path, config);
    committed = store->info();
  }

  // Simulate a crash mid-append: flushed-but-uncommitted records plus a
  // torn half-frame on two columns.
  append_garbage(column_path(tmp.path, kColBlocks), 37);
  append_garbage(column_path(tmp.path, kColDerived), 5);

  // A read-only open serves the committed prefix without touching the
  // files (recovery-by-truncation is a writer's job).
  const std::uint64_t torn_size = file_size(column_path(tmp.path, kColBlocks));
  {
    auto ro = DiskChainStore::open(
        tmp.path, config, DiskChainStore::Options{/*read_only=*/true, {}});
    EXPECT_EQ(ro->tip_height(), 8u);
    ASSERT_NE(ro->load_context(), nullptr);
    EXPECT_EQ(file_size(column_path(tmp.path, kColBlocks)), torn_size);
  }

  // A read-write open truncates the tails back to the committed sizes.
  auto store = DiskChainStore::open(tmp.path, config);
  EXPECT_EQ(store->tip_height(), 8u);
  for (const auto& c : committed.columns) {
    std::string path = tmp.path + "/" + c.name + ".col";
    EXPECT_EQ(file_size(path), c.bytes) << c.name;
  }
  std::string err;
  EXPECT_TRUE(store->verify_checksums(&err)) << err;
  auto loaded = store->load_context();
  ASSERT_NE(loaded, nullptr);
  auto ram = ChainBuilder::build(setup.workload, config);
  EXPECT_EQ(query_bytes(*ram, addrs[0]), query_bytes(*loaded, addrs[0]));
}

TEST(StoreRecovery, CorruptNewestCommitFallsBackOneCommit) {
  const ExperimentSetup setup = test_setup(8, /*seed=*/31);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  const std::vector<Address> addrs = query_addresses(*setup.workload);
  auto base_workload = prefix_workload(*setup.workload, 4);
  TempDir tmp;

  std::uint64_t blocks_bytes_commit1 = 0;
  {
    auto store = DiskChainStore::open(tmp.path, config);
    ChainBuildOptions o;
    o.store = store.get();
    (void)ChainBuilder::build(base_workload, config, o);
    blocks_bytes_commit1 = store->info().columns[kColBlocks].bytes;
  }
  {
    auto store = DiskChainStore::open(tmp.path, config);
    auto ctx = store->load_context();
    ASSERT_NE(ctx, nullptr);
    ChainBuildOptions o;
    o.store = store.get();
    (void)ctx->extend(tail_blocks(*setup.workload, 4), o);
    ASSERT_EQ(store->tip_height(), 8u);
  }

  // Damage a payload byte written by the SECOND commit.
  flip_byte(column_path(tmp.path, kColBlocks), blocks_bytes_commit1 + 10);

  // Reopen: the newest commit fails its CRC walk, recovery falls back
  // exactly one commit, and the damaged extent is truncated away.
  auto store = DiskChainStore::open(tmp.path, config);
  EXPECT_EQ(store->tip_height(), 4u);
  EXPECT_EQ(store->info().seqno, 2u);
  auto loaded = store->load_context();
  ASSERT_NE(loaded, nullptr);
  auto ram4 = ChainBuilder::build(base_workload, config);
  EXPECT_EQ(query_bytes(*ram4, addrs[0]), query_bytes(*loaded, addrs[0]));

  // Re-appending over the rolled-back store heals it completely.
  ChainBuildOptions o;
  o.store = store.get();
  auto grown = loaded->extend(tail_blocks(*setup.workload, 4), o);
  EXPECT_EQ(store->tip_height(), 8u);
  store.reset();
  auto store2 = DiskChainStore::open(tmp.path, config);
  EXPECT_EQ(store2->tip_height(), 8u);
  std::string err;
  EXPECT_TRUE(store2->verify_checksums(&err)) << err;
  auto ram8 = ChainBuilder::build(setup.workload, config);
  auto loaded8 = store2->load_context();
  ASSERT_NE(loaded8, nullptr);
  expect_same_bytes(*ram8, *loaded8, addrs, "healed");
}

TEST(StoreRecovery, CorruptionBeneathTheLastGoodCommitIsFatal) {
  const ExperimentSetup setup = test_setup(8, /*seed=*/32);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  auto base_workload = prefix_workload(*setup.workload, 4);
  TempDir tmp;
  {
    auto store = DiskChainStore::open(tmp.path, config);
    ChainBuildOptions o;
    o.store = store.get();
    (void)ChainBuilder::build(base_workload, config, o);
  }
  {
    auto store = DiskChainStore::open(tmp.path, config);
    auto ctx = store->load_context();
    ASSERT_NE(ctx, nullptr);
    ChainBuildOptions o;
    o.store = store.get();
    (void)ctx->extend(tail_blocks(*setup.workload, 4), o);
  }
  // First record's payload of blocks.col: covered by BOTH commits, so
  // neither superblock slot can validate — the store is genuinely dead.
  flip_byte(column_path(tmp.path, kColBlocks),
            ColumnFile::kHeaderSize + ColumnFile::kRecordOverhead + 2);
  EXPECT_THROW((void)DiskChainStore::open(tmp.path, config), StoreError);
}

TEST(StoreRecovery, SegBfDamageIsCaughtOfflineNotAtOpen) {
  const ExperimentSetup setup = test_setup(8, /*seed=*/33);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  TempDir tmp;
  {
    auto store = DiskChainStore::open(tmp.path, config);
    ChainBuildOptions o;
    o.store = store.get();
    (void)ChainBuilder::build(setup.workload, config, o);
    ASSERT_EQ(column_records(store->info(), "segbf"), 2u);
  }
  // Flip a BF payload bit. The reopen CRC walk deliberately skips
  // segbf.col (checksumming it would fault every page in and defeat lazy
  // page-in), so open must still succeed...
  flip_byte(column_path(tmp.path, kColSegBf),
            ColumnFile::kHeaderSize + ColumnFile::kRecordOverhead + 3);
  auto store = DiskChainStore::open(tmp.path, config);
  EXPECT_EQ(store->tip_height(), 8u);
  // ...while the offline walk (store-info --verify) pins the damage.
  std::string err;
  EXPECT_FALSE(store->verify_checksums(&err));
  EXPECT_NE(err.find("segbf"), std::string::npos) << err;
}

TEST(StoreOpen, RefusesConfigMismatchAndMissingStores) {
  const ExperimentSetup setup = test_setup(8, /*seed=*/34);
  ProtocolConfig config{Design::kLvq, BloomGeometry{128, 4}, 4};
  TempDir tmp;
  {
    auto store = DiskChainStore::open(tmp.path, config);
    ChainBuildOptions o;
    o.store = store.get();
    (void)ChainBuilder::build(setup.workload, config, o);
  }
  ProtocolConfig other_design{Design::kStrawman, BloomGeometry{128, 4}, 4};
  EXPECT_THROW((void)DiskChainStore::open(tmp.path, other_design), StoreError);
  ProtocolConfig other_geom{Design::kLvq, BloomGeometry{256, 4}, 4};
  EXPECT_THROW((void)DiskChainStore::open(tmp.path, other_geom), StoreError);
  EXPECT_THROW(
      (void)DiskChainStore::open(
          tmp.path + "/nowhere", config,
          DiskChainStore::Options{/*read_only=*/true, {}}),
      StoreError);

  // Writes through a read-only handle are refused.
  auto ro = DiskChainStore::open(
      tmp.path, config, DiskChainStore::Options{/*read_only=*/true, {}});
  EXPECT_THROW(ro->stage_flush("nope"), StoreError);
  EXPECT_THROW(ro->commit(4, Hash256{}), StoreError);
}

// ---------------------------------------------------------------------
// 4. Golden fixture stores: the on-disk format, pinned per design.
// ---------------------------------------------------------------------

const ExperimentSetup& golden_store_setup() {
  static ExperimentSetup setup = [] {
    WorkloadConfig c;
    c.seed = 7;
    c.num_blocks = 10;
    c.background_txs_per_block = 3;
    c.profiles = {{"p", 3, 2}, {"ghost", 0, 0}};
    return make_setup(c);
  }();
  return setup;
}

/// Every fixture store under tests/data/store_golden/<design>/ was written
/// by an earlier build of this code. Today's code must (a) still read it
/// and serve byte-identical responses, and (b) still PRODUCE those exact
/// files. If this test fails because you changed the on-disk layout on
/// purpose: bump the format version, regenerate with
/// LVQ_REGEN_STORE_GOLDEN=1, and say so in the commit message.
TEST(StoreGolden, FixtureStoresStayReadableAndByteStable) {
  const ExperimentSetup& setup = golden_store_setup();
  const std::vector<Address> addrs = query_addresses(*setup.workload);
  const bool regen = std::getenv("LVQ_REGEN_STORE_GOLDEN") != nullptr;
  const std::string root = std::string(LVQ_TEST_DATA_DIR) + "/store_golden";
  if (regen) {
    ::mkdir(LVQ_TEST_DATA_DIR, 0755);
    ::mkdir(root.c_str(), 0755);
  }

  for (Design design : kAllDesigns) {
    SCOPED_TRACE(design_name(design));
    ProtocolConfig config{design, BloomGeometry{64, 3}, 4};
    const std::string dir = root + "/" + design_name(design);

    if (regen) {
      remove_store_dir(dir);
      auto store = DiskChainStore::open(
          dir, config, DiskChainStore::Options{false, SyncMode::kNone});
      ChainBuildOptions o;
      o.store = store.get();
      (void)ChainBuilder::build(setup.workload, config, o);
      ASSERT_EQ(store->tip_height(), 10u);
      continue;
    }

    ASSERT_GT(file_size(dir + "/superblock"), 0u)
        << "golden fixture store missing at " << dir
        << " — regenerate with LVQ_REGEN_STORE_GOLDEN=1";

    // (a) Reader compatibility: the fixture serves all-RAM bytes.
    auto store = DiskChainStore::open(
        dir, config, DiskChainStore::Options{/*read_only=*/true, {}});
    EXPECT_EQ(store->info().version, 1u);
    EXPECT_EQ(store->tip_height(), 10u);
    auto loaded = store->load_context();
    ASSERT_NE(loaded, nullptr);
    auto ram = ChainBuilder::build(setup.workload, config);
    expect_same_bytes(*ram, *loaded, addrs, "golden fixture");

    // (b) Writer stability: a freshly written store is byte-for-byte the
    // committed fixture — superblock and all six columns.
    TempDir tmp;
    {
      auto fresh = DiskChainStore::open(
          tmp.path, config, DiskChainStore::Options{false, SyncMode::kNone});
      ChainBuildOptions o;
      o.store = fresh.get();
      (void)ChainBuilder::build(setup.workload, config, o);
    }
    EXPECT_EQ(read_file(tmp.path + "/superblock"), read_file(dir + "/superblock"))
        << "superblock layout drifted — bump the version and regenerate";
    for (std::uint32_t c = 0; c < kColumnCount; ++c) {
      EXPECT_EQ(read_file(column_path(tmp.path, c)), read_file(column_path(dir, c)))
          << column_name(c)
          << ".col layout drifted — bump the version and regenerate";
    }
  }
}

// ---------------------------------------------------------------------
// 5. Lazy page-in smoke (CI-scale; gated on LVQ_STORE_SMOKE_BLOCKS).
// ---------------------------------------------------------------------

/// Forks a child that reopens the store and reports its peak RSS (bytes).
/// `touch_all` additionally CRC-walks every column, faulting in every
/// segbf page — the eager baseline the lazy path must stay well under.
long long reopened_peak_rss(const std::string& dir,
                            const ProtocolConfig& config, const Address& addr,
                            bool touch_all) {
  int fds[2];
  if (::pipe(fds) != 0) return -1;
  pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    ::close(fds[0]);
    long long rss = -1;
    try {
      auto store = DiskChainStore::open(
          dir, config, DiskChainStore::Options{/*read_only=*/true, {}});
      auto ctx = store->load_context();
      if (ctx != nullptr) {
        Writer w;
        build_query_response(*ctx, addr).serialize(w);
        if (touch_all) {
          std::string err;
          (void)store->verify_checksums(&err);
        }
        struct rusage ru{};
        ::getrusage(RUSAGE_SELF, &ru);
        rss = static_cast<long long>(ru.ru_maxrss) * 1024;  // KB on Linux
      }
    } catch (...) {
      rss = -1;
    }
    (void)!::write(fds[1], &rss, sizeof(rss));
    ::_exit(0);
  }
  ::close(fds[1]);
  long long rss = -1;
  (void)!::read(fds[0], &rss, sizeof(rss));
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return rss;
}

/// CI runs this at >= 20k blocks (see .github/workflows): reopening a big
/// store must NOT fault the segment-BF arrays in — the lazy child's peak
/// RSS stays at least half the segbf column below the eager child's.
TEST(StoreSmoke, LazySegBfReopenKeepsRssBounded) {
  const char* env = std::getenv("LVQ_STORE_SMOKE_BLOCKS");
  if (env == nullptr) {
    GTEST_SKIP() << "set LVQ_STORE_SMOKE_BLOCKS=<n> to run the RSS smoke";
  }
  const std::uint32_t blocks = static_cast<std::uint32_t>(std::atoll(env));
  ASSERT_GE(blocks, 512u);

  // 4 KB filters, M=64: a 20k-block store carries ~160 MB of segment BFs.
  ProtocolConfig config{Design::kLvq, BloomGeometry{4096, 6}, 64};
  WorkloadConfig wc;
  wc.seed = 909;
  wc.num_blocks = blocks;
  wc.background_txs_per_block = 1;
  wc.profiles = {{"p", 3, 2}};

  TempDir tmp;
  Address addr;
  std::uint64_t segbf_bytes = 0;
  {
    auto workload =
        std::make_shared<const Workload>(generate_workload(wc));
    addr = workload->profiles[0].address;
    auto store = DiskChainStore::open(tmp.path, config);
    ChainBuildOptions o;
    o.store = store.get();
    o.proof_index_bf_budget = ~0ull;  // never skip the segment arrays
    (void)ChainBuilder::build(workload, config, o);
    segbf_bytes = store->info().columns[kColSegBf].bytes;
    // The in-RAM build (and its page dirtying) dies here; the children
    // below inherit whatever RSS baseline is left, which cancels out in
    // the lazy-vs-eager comparison.
  }
  ASSERT_GT(segbf_bytes, 8ull << 20) << "smoke store too small to measure";

  long long lazy = reopened_peak_rss(tmp.path, config, addr, false);
  long long eager = reopened_peak_rss(tmp.path, config, addr, true);
  ASSERT_GT(lazy, 0);
  ASSERT_GT(eager, 0);
  EXPECT_LT(lazy + static_cast<long long>(segbf_bytes / 2), eager)
      << "lazy reopen faulted the segment-BF column in (lazy=" << lazy
      << " eager=" << eager << " segbf=" << segbf_bytes << ")";
}

}  // namespace
}  // namespace lvq
