// Multi-peer failover: the paper's verifiability turns byzantine peers
// into a liveness problem, not a safety one. These tests run the
// acceptance scenario from the fault-tolerance issue — a stalled peer, a
// forging peer, and one honest peer — plus transport-failure coverage for
// the incremental sync and reorg paths.
#include <gtest/gtest.h>

#include <chrono>

#include "core/query.hpp"
#include "net/failover_transport.hpp"
#include "net/fault_injection.hpp"
#include "net/retry_transport.hpp"
#include "net/reactor_server.hpp"
#include "net/tcp_transport.hpp"
#include "node/attack.hpp"
#include "node/session.hpp"
#include "util/serialize.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 818;
    c.num_blocks = 32;
    c.background_txs_per_block = 8;
    c.profiles = {{"a", 6, 5}, {"ghost", 0, 0}};
    return make_setup(c);
  }();
  return s;
}

constexpr BloomGeometry kGeom{256, 6};
const ProtocolConfig kConfig{Design::kLvq, kGeom, 8};

Bytes echo(ByteSpan req) { return Bytes(req.begin(), req.end()); }

/// Chain equality via size + tip hash: the hash chain makes the tip hash
/// commit to every earlier header.
bool same_chain(const std::vector<BlockHeader>& a,
                const std::vector<BlockHeader>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() || a.back().hash() == b.back().hash();
}

/// A full node that forges the SMT-proved appearance count on every query
/// response (attacks::forge_count) but serves everything else honestly.
TcpServer::Handler forging_handler(const FullNode& full) {
  return [&full](ByteSpan req) -> Bytes {
    try {
      auto [type, payload] = decode_envelope(req);
      if (type == MsgType::kQueryRequest) {
        Reader r(payload);
        QueryRequest q = QueryRequest::deserialize(r);
        QueryResponse resp = full.query(q.address);
        attacks::forge_count(resp);
        Writer w;
        resp.serialize(w);
        return encode_envelope(MsgType::kQueryResponse,
                               ByteSpan{w.data().data(), w.data().size()});
      }
    } catch (const SerializeError&) {
    }
    return full.handle_message(req);
  };
}

TEST(Failover, RotatesPastDeadPeers) {
  LoopbackTransport dead1(echo), dead2(echo), alive(echo);
  FaultPlan always_down;
  always_down.disconnect_prob = 1.0;
  FaultInjectingTransport faulty1(dead1, always_down);
  FaultInjectingTransport faulty2(dead2, always_down);
  FailoverTransport failover({&faulty1, &faulty2, &alive});
  Bytes msg = {1, 2};
  EXPECT_EQ(failover.round_trip(ByteSpan{msg.data(), msg.size()}), msg);
  EXPECT_EQ(failover.current_peer(), 2u);
  EXPECT_EQ(failover.failovers(), 2u);
  // Sticky: subsequent round trips go straight to the live peer.
  failover.round_trip(ByteSpan{msg.data(), msg.size()});
  EXPECT_EQ(failover.failovers(), 2u);
}

TEST(Failover, AllPeersDeadThrowsLastTypedError) {
  LoopbackTransport inner(echo);
  FaultPlan down;
  down.timeout_prob = 1.0;
  FaultInjectingTransport faulty(inner, down);
  FailoverTransport failover({&faulty});
  Bytes msg = {3};
  try {
    failover.round_trip(ByteSpan{msg.data(), msg.size()});
    FAIL() << "expected failure with no live peers";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kTimeout);
  }
}

TEST(Failover, ReportFailureRotatesAwayFromLiar) {
  LoopbackTransport a(echo), b(echo);
  FailoverTransport failover({&a, &b});
  EXPECT_EQ(failover.current_peer(), 0u);
  failover.report_failure();  // caller-side: peer 0's proof did not verify
  EXPECT_EQ(failover.current_peer(), 1u);
  Bytes msg = {9};
  failover.round_trip(ByteSpan{msg.data(), msg.size()});
  EXPECT_EQ(b.bytes_sent(), 1u);
  EXPECT_EQ(a.bytes_sent(), 0u);
}

// The issue's acceptance scenario: peer A stalls past the deadline, peer B
// returns a forged proof, peer C is honest — query_any still verifies.
TEST(Failover, QueryAnySurvivesStallAndForgedProof) {
  FullNode full(setup().workload, setup().derived, kConfig);

  // Peer A: a real socket server that stalls every request.
  FaultPlan stall;
  stall.timeout_prob = 1.0;
  stall.stall_ms = 5'000;
  FlakyServer stalling_server(
      [&](ByteSpan req) { return full.handle_message(req); }, stall);
  TcpTransportOptions copts;
  copts.io_timeout_ms = 200;
  TcpTransport peer_a(stalling_server.port(), copts);

  // Peer B: answers promptly but forges the appearance count.
  LoopbackTransport peer_b(forging_handler(full));

  // Peer C: honest.
  LoopbackTransport peer_c(
      [&](ByteSpan req) { return full.handle_message(req); });

  LightNode light(kConfig);
  light.set_headers(full.headers());
  const Address& addr = setup().workload->profiles[0].address;

  auto start = std::chrono::steady_clock::now();
  auto res = light.query_any({&peer_a, &peer_b, &peer_c}, addr);
  auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_TRUE(res.result.outcome.ok) << res.result.outcome.detail;
  EXPECT_EQ(res.peer_index, 2u);
  EXPECT_EQ(res.peers_tried, 3u);
  EXPECT_EQ(res.transport_failures, 1u);  // peer A timed out
  EXPECT_EQ(res.rejected_proofs, 1u);     // peer B's forgery rejected
  EXPECT_LT(elapsed, std::chrono::milliseconds(3'000));  // no hang

  GroundTruth gt = scan_ground_truth(*setup().workload, addr);
  EXPECT_EQ(res.result.outcome.history.total_txs(), gt.txs.size());
}

// Same stalled peer, no failover and no retries: the query must fail with
// a typed timeout within the deadline, not hang.
TEST(Failover, StalledPeerAloneFailsFastWithTypedTimeout) {
  FullNode full(setup().workload, setup().derived, kConfig);
  FaultPlan stall;
  stall.timeout_prob = 1.0;
  stall.stall_ms = 5'000;
  FlakyServer stalling_server(
      [&](ByteSpan req) { return full.handle_message(req); }, stall);
  TcpTransportOptions copts;
  copts.io_timeout_ms = 200;
  TcpTransport peer(stalling_server.port(), copts);

  LightNode light(kConfig);
  light.set_headers(full.headers());
  const Address& addr = setup().workload->profiles[0].address;

  auto start = std::chrono::steady_clock::now();
  try {
    light.query(peer, addr);
    FAIL() << "expected typed timeout";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kTimeout);
  }
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(2'000));
}

TEST(Failover, OnlyForgersLeftReturnsRejectedOutcome) {
  FullNode full(setup().workload, setup().derived, kConfig);
  LoopbackTransport liar1(forging_handler(full));
  LoopbackTransport liar2(forging_handler(full));
  LightNode light(kConfig);
  light.set_headers(full.headers());
  const Address& addr = setup().workload->profiles[0].address;
  auto res = light.query_any({&liar1, &liar2}, addr);
  EXPECT_FALSE(res.result.outcome.ok);
  EXPECT_EQ(res.rejected_proofs, 2u);
  EXPECT_EQ(res.peers_tried, 2u);
}

TEST(Failover, MultiPeerSessionConvenienceWiring) {
  MultiPeerSession session(setup(), kConfig);
  FaultPlan down;
  down.disconnect_prob = 1.0;
  LoopbackTransport dead_inner(echo);
  FaultInjectingTransport dead(dead_inner, down);
  session.add_peer(dead);          // peer 0: always down
  session.add_honest_peer();       // peer 1: honest loopback
  const Address& addr = setup().workload->profiles[0].address;
  auto res = session.query_any(addr);
  EXPECT_TRUE(res.result.outcome.ok) << res.result.outcome.detail;
  EXPECT_EQ(res.peer_index, 1u);
  EXPECT_EQ(res.transport_failures, 1u);
}

// ---- satellite: sync paths keep local state intact through faults ----

TEST(SyncRobustness, MidSyncDisconnectKeepsHeaders) {
  FullNode full(setup().workload, setup().derived, kConfig);
  LoopbackTransport inner(
      [&](ByteSpan req) { return full.handle_message(req); });
  LightNode light(kConfig);
  ASSERT_TRUE(light.sync_headers(inner));
  std::vector<BlockHeader> before = light.headers();

  FaultPlan plan;
  plan.script = {FaultMode::kDisconnect, FaultMode::kTimeout};
  FaultInjectingTransport faulty(inner, plan);
  EXPECT_FALSE(light.sync_new_headers(faulty));  // disconnect mid-sync
  EXPECT_TRUE(same_chain(light.headers(), before));
  EXPECT_FALSE(light.sync_new_headers(faulty));  // timeout mid-sync
  EXPECT_TRUE(same_chain(light.headers(), before));
  // Transport recovered: the same call now succeeds (no new blocks).
  EXPECT_TRUE(light.sync_new_headers(faulty));
  EXPECT_TRUE(same_chain(light.headers(), before));
}

TEST(SyncRobustness, TruncatedHeaderReplyKeepsState) {
  FullNode full(setup().workload, setup().derived, kConfig);
  LoopbackTransport inner(
      [&](ByteSpan req) { return full.handle_message(req); });
  FaultPlan plan;
  plan.script = {FaultMode::kTruncateReply, FaultMode::kGarbageReply};
  FaultInjectingTransport faulty(inner, plan);

  LightNode light(kConfig);
  EXPECT_FALSE(light.sync_headers(faulty));  // truncated reply
  EXPECT_EQ(light.tip_height(), 0u);
  EXPECT_FALSE(light.sync_headers(faulty));  // garbage reply
  EXPECT_EQ(light.tip_height(), 0u);
  EXPECT_TRUE(light.sync_headers(faulty));   // script exhausted: honest
  EXPECT_EQ(light.tip_height(), 32u);
}

TEST(SyncRobustness, FailedReorgKeepsStateThroughFlakyTransport) {
  FullNode full(setup().workload, setup().derived, kConfig);
  LoopbackTransport inner(
      [&](ByteSpan req) { return full.handle_message(req); });
  LightNode light(kConfig);
  ASSERT_TRUE(light.sync_headers(inner));
  std::vector<BlockHeader> before = light.headers();
  std::uint64_t tip = light.tip_height();

  // A reorg announcement that does not link / is not longer must leave
  // state untouched even when interleaved with transport failures.
  std::vector<BlockHeader> bogus = {before[0]};  // links at genesis, shorter
  EXPECT_FALSE(light.replace_headers_from(1, bogus));
  EXPECT_TRUE(same_chain(light.headers(), before));

  std::vector<BlockHeader> unlinked(before.end() - 2, before.end());
  EXPECT_FALSE(light.replace_headers_from(2, unlinked));  // wrong parent
  EXPECT_TRUE(same_chain(light.headers(), before));

  FaultPlan plan;
  plan.script = {FaultMode::kDisconnect};
  FaultInjectingTransport faulty(inner, plan);
  EXPECT_FALSE(light.sync_new_headers(faulty));
  EXPECT_EQ(light.tip_height(), tip);
  EXPECT_TRUE(same_chain(light.headers(), before));
}

}  // namespace
}  // namespace lvq
