// Tests for the synthetic workload generator: Table III profile fidelity,
// determinism, and chain statistics in the calibrated range.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "chain/block.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig c;
  c.seed = 99;
  c.num_blocks = 64;
  c.background_txs_per_block = 12;
  c.profiles = {
      {"A0", 0, 0}, {"A1", 1, 1}, {"A2", 6, 3}, {"A3", 20, 15},
  };
  return c;
}

TEST(Workload, ProfileGroundTruthMatchesScan) {
  Workload w = generate_workload(small_config());
  ASSERT_EQ(w.profiles.size(), 4u);
  for (const AddressProfile& p : w.profiles) {
    GroundTruth gt = scan_ground_truth(w, p.address);
    EXPECT_EQ(gt.txs.size(), p.total_txs) << p.label;
    EXPECT_EQ(gt.block_count, p.total_blocks) << p.label;
    // The per-height schedule matches the actual placement.
    std::map<std::uint64_t, std::uint32_t> per_height;
    for (const auto& [height, txid] : gt.txs) per_height[height]++;
    ASSERT_EQ(per_height.size(), p.heights.size());
    for (std::size_t i = 0; i < p.heights.size(); ++i) {
      EXPECT_EQ(per_height[p.heights[i]], p.txs_per_height[i]) << p.label;
    }
  }
}

TEST(Workload, Table3ProfilesAreDefault) {
  auto profiles = table3_profiles();
  ASSERT_EQ(profiles.size(), 6u);
  EXPECT_EQ(profiles[0].target_txs, 0u);
  EXPECT_EQ(profiles[4].target_txs, 324u);
  EXPECT_EQ(profiles[4].target_blocks, 289u);
  EXPECT_EQ(profiles[5].target_txs, 929u);
  EXPECT_EQ(profiles[5].target_blocks, 410u);
}

TEST(Workload, DeterministicForEqualSeeds) {
  Workload a = generate_workload(small_config());
  Workload b = generate_workload(small_config());
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    ASSERT_EQ(a.blocks[i].size(), b.blocks[i].size());
    for (std::size_t t = 0; t < a.blocks[i].size(); ++t) {
      EXPECT_EQ(a.blocks[i][t].txid(), b.blocks[i][t].txid());
    }
  }
  EXPECT_EQ(a.profiles[2].address, b.profiles[2].address);
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadConfig c = small_config();
  Workload a = generate_workload(c);
  c.seed = 100;
  Workload b = generate_workload(c);
  EXPECT_NE(a.blocks[0][0].txid(), b.blocks[0][0].txid());
}

TEST(Workload, ProfileAddressesNeverLeakIntoBackground) {
  Workload w = generate_workload(small_config());
  // The zero-tx profile must appear nowhere at all.
  GroundTruth gt = scan_ground_truth(w, w.profiles[0].address);
  EXPECT_TRUE(gt.txs.empty());
  // For every profile, appearances must be exactly the injected ones (the
  // ground-truth scan already proved counts match; also check disjoint
  // distinct profile addresses).
  std::set<Address> addrs;
  for (const AddressProfile& p : w.profiles) addrs.insert(p.address);
  EXPECT_EQ(addrs.size(), w.profiles.size());
}

TEST(Workload, EveryBlockHasCoinbaseAndBackgroundTxs) {
  WorkloadConfig c = small_config();
  Workload w = generate_workload(c);
  ASSERT_EQ(w.blocks.size(), c.num_blocks);
  for (const auto& txs : w.blocks) {
    ASSERT_GE(txs.size(), 1u + c.background_txs_per_block);
    EXPECT_TRUE(txs[0].is_coinbase());
    for (std::size_t i = 1; i < txs.size(); ++i) {
      EXPECT_FALSE(txs[i].is_coinbase());
    }
  }
}

TEST(Workload, ValueConservationOnNonMintTxs) {
  // Zero fees: inputs == outputs for every non-coinbase transaction.
  Workload w = generate_workload(small_config());
  for (const auto& txs : w.blocks) {
    for (const Transaction& tx : txs) {
      if (tx.is_coinbase()) continue;
      Amount in = 0, out = 0;
      for (const TxInput& i : tx.inputs) in += i.value;
      for (const TxOutput& o : tx.outputs) out += o.value;
      EXPECT_EQ(in, out);
    }
  }
}

TEST(Workload, UniqueAddressDensityInCalibratedRange) {
  // With the default era parameters we expect a few hundred unique
  // addresses per block (2012-era mainnet shape; DESIGN.md §2).
  WorkloadConfig c;
  c.num_blocks = 40;
  c.profiles.clear();  // Table III defaults need a 4096-block chain
  Workload w = generate_workload(c);
  // Skip the warm-up prefix: while the address pool is still small, reuse
  // dominates and blocks carry fewer unique addresses.
  for (std::size_t i = 20; i < w.blocks.size(); ++i) {
    Block b;
    b.txs = w.blocks[i];
    std::size_t unique = b.address_counts().size();
    EXPECT_GT(unique, 150u) << "block " << (i + 1);
    EXPECT_LT(unique, 700u) << "block " << (i + 1);
  }
}

TEST(Workload, ProfileBalanceIsNonNegative) {
  // Profiles alternate receive/spend and can never overdraw.
  Workload w = generate_workload(small_config());
  for (const AddressProfile& p : w.profiles) {
    GroundTruth gt = scan_ground_truth(w, p.address);
    EXPECT_GE(gt.balance, 0) << p.label;
  }
}

TEST(Workload, RejectsImpossibleProfiles) {
  WorkloadConfig c = small_config();
  c.profiles = {{"bad", 5, 100}};  // more blocks than txs
  EXPECT_THROW(generate_workload(c), std::logic_error);
  c.profiles = {{"bad2", 200, 100}};  // more blocks than the chain
  EXPECT_THROW(generate_workload(c), std::logic_error);
}

}  // namespace
}  // namespace lvq
