// End-to-end protocol tests: full node -> wire bytes -> light node for all
// five designs, checked against workload ground truth.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "node/session.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

/// Shared workload: 100 blocks (so with M=32 the forest is 3 complete
/// segments + sub-segments [97,100]), four profiles spanning none/sparse/
/// dense usage.
const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 777;
    c.num_blocks = 100;
    c.background_txs_per_block = 10;
    c.profiles = {
        {"none", 0, 0}, {"one", 1, 1}, {"sparse", 12, 9}, {"dense", 80, 45},
    };
    return make_setup(c);
  }();
  return s;
}

/// Roomy filter: few false positives. Tight filter: heavily saturated, so
/// FPM-handling paths (SMT absence / integral blocks) get exercised hard.
constexpr BloomGeometry kRoomy{1024, 8};
constexpr BloomGeometry kTight{24, 4};

struct E2EParam {
  Design design;
  BloomGeometry bloom;
  std::uint32_t segment_length;
};

std::string param_name(const ::testing::TestParamInfo<E2EParam>& info) {
  std::string name = design_name(info.param.design);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_bf" + std::to_string(info.param.bloom.size_bytes) + "_m" +
         std::to_string(info.param.segment_length);
}

class EndToEnd : public ::testing::TestWithParam<E2EParam> {};

TEST_P(EndToEnd, VerifiedHistoryMatchesGroundTruth) {
  const E2EParam& param = GetParam();
  ProtocolConfig config{param.design, param.bloom, param.segment_length};
  QuerySession session(setup(), config);

  for (const AddressProfile& profile : setup().workload->profiles) {
    LightNode::QueryResult result = session.query(profile.address);
    ASSERT_TRUE(result.outcome.ok)
        << profile.label << ": " << verify_error_name(result.outcome.error)
        << " — " << result.outcome.detail;

    GroundTruth gt = scan_ground_truth(*setup().workload, profile.address);
    const VerifiedHistory& hist = result.outcome.history;

    // Every verified (height, txid) pair must be genuine and complete.
    std::set<std::pair<std::uint64_t, Hash256>> expect(gt.txs.begin(),
                                                       gt.txs.end());
    std::set<std::pair<std::uint64_t, Hash256>> got;
    for (const VerifiedBlockTxs& b : hist.blocks) {
      for (const Transaction& tx : b.txs) got.emplace(b.height, tx.txid());
    }
    EXPECT_EQ(got, expect) << profile.label;
    EXPECT_EQ(hist.total_txs(), gt.txs.size());
    EXPECT_EQ(hist.balance(), gt.balance) << profile.label;

    // Designs with SMT prove completeness on every block.
    if (design_has_smt(param.design)) {
      EXPECT_TRUE(hist.fully_complete()) << profile.label;
    }

    // Size accounting must be exact: envelope byte + categorized payload.
    EXPECT_EQ(result.breakdown.total() + 1, result.response_bytes)
        << profile.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, EndToEnd,
    ::testing::Values(
        E2EParam{Design::kStrawman, kRoomy, 32},
        E2EParam{Design::kStrawman, kTight, 32},
        E2EParam{Design::kStrawmanVariant, kRoomy, 32},
        E2EParam{Design::kStrawmanVariant, kTight, 32},
        E2EParam{Design::kLvqNoBmt, kRoomy, 32},
        E2EParam{Design::kLvqNoBmt, kTight, 32},
        E2EParam{Design::kLvqNoSmt, kRoomy, 32},
        E2EParam{Design::kLvqNoSmt, kTight, 32},
        E2EParam{Design::kLvq, kRoomy, 32},
        E2EParam{Design::kLvq, kTight, 32},
        E2EParam{Design::kLvq, kRoomy, 1},
        E2EParam{Design::kLvq, kRoomy, 128},
        E2EParam{Design::kLvq, kTight, 4}),
    param_name);

/// Chain tips that are not multiples of M exercise §V-B (sub-segments).
class LastSegmentSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LastSegmentSweep, LvqVerifiesAtEveryTip) {
  std::uint64_t tip = GetParam();
  WorkloadConfig c;
  c.seed = 1000 + tip;
  c.num_blocks = static_cast<std::uint32_t>(tip);
  c.background_txs_per_block = 6;
  std::uint32_t dense_blocks = static_cast<std::uint32_t>(std::min<std::uint64_t>(tip, 7));
  c.profiles = {{"p", 2 * dense_blocks, dense_blocks}, {"absent", 0, 0}};
  ExperimentSetup s = make_setup(c);

  ProtocolConfig config{Design::kLvq, BloomGeometry{64, 5}, 8};
  QuerySession session(s, config);
  for (const AddressProfile& p : s.workload->profiles) {
    auto result = session.query(p.address);
    ASSERT_TRUE(result.outcome.ok)
        << "tip=" << tip << " " << p.label << ": "
        << verify_error_name(result.outcome.error) << " "
        << result.outcome.detail;
    GroundTruth gt = scan_ground_truth(*s.workload, p.address);
    EXPECT_EQ(result.outcome.history.total_txs(), gt.txs.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Tips, LastSegmentSweep,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 9, 11, 15, 16, 17,
                                           23, 24, 31, 33));

TEST(Protocol, HeaderStorageRanking) {
  // Challenge 1: strawman headers are BF-sized; every hash-committed
  // design stays within ~2x of vanilla Bitcoin's 80-byte headers.
  std::map<Design, std::uint64_t> storage;
  for (Design d : {Design::kStrawman, Design::kStrawmanVariant,
                   Design::kLvqNoBmt, Design::kLvqNoSmt, Design::kLvq}) {
    ProtocolConfig config{d, BloomGeometry{10 * 1024, 10}, 32};
    QuerySession session(setup(), config);
    storage[d] = session.light_node().header_storage_bytes();
  }
  std::uint64_t tip = setup().workload->blocks.size();
  EXPECT_GT(storage[Design::kStrawman], tip * 10 * 1024);
  EXPECT_EQ(storage[Design::kStrawmanVariant], tip * (81 + 32));
  EXPECT_EQ(storage[Design::kLvq], tip * (81 + 64));
  EXPECT_EQ(storage[Design::kLvqNoSmt], tip * (81 + 32));
  EXPECT_GT(storage[Design::kStrawman], 60 * storage[Design::kLvq]);
}

TEST(Protocol, ResponseWireRoundTrip) {
  ProtocolConfig config{Design::kLvq, kRoomy, 32};
  FullNode full(setup().workload, setup().derived, config);
  const Address& addr = setup().workload->profiles[2].address;
  QueryResponse resp = full.query(addr);

  Writer w;
  resp.serialize(w);
  EXPECT_EQ(w.size(), resp.serialized_size());
  Reader r(ByteSpan{w.data().data(), w.data().size()});
  QueryResponse back = QueryResponse::deserialize(r, config);
  EXPECT_EQ(back.tip_height, resp.tip_height);
  EXPECT_EQ(back.serialized_size(), resp.serialized_size());
  EXPECT_EQ(back.breakdown().total(), resp.breakdown().total());
}

TEST(Protocol, DeserializeRejectsWrongDesign) {
  ProtocolConfig lvq_config{Design::kLvq, kRoomy, 32};
  FullNode full(setup().workload, setup().derived, lvq_config);
  QueryResponse resp = full.query(setup().workload->profiles[1].address);
  Writer w;
  resp.serialize(w);
  ProtocolConfig other{Design::kLvqNoSmt, kRoomy, 32};
  Reader r(ByteSpan{w.data().data(), w.data().size()});
  EXPECT_THROW(QueryResponse::deserialize(r, other), SerializeError);
}

TEST(Protocol, MalformedRequestGetsErrorReply) {
  ProtocolConfig config{Design::kLvq, kRoomy, 32};
  FullNode full(setup().workload, setup().derived, config);
  Bytes garbage = {0x42, 0x42};
  Bytes reply = full.handle_message(ByteSpan{garbage.data(), garbage.size()});
  auto [type, payload] = decode_envelope(ByteSpan{reply.data(), reply.size()});
  EXPECT_EQ(type, MsgType::kError);
}

TEST(Protocol, FragmentShapeFollowsEq4) {
  // For the strawman variant: Ø exactly when the BF check succeeds;
  // otherwise MBrs (existent) or IB (FPM). Eq. 4 of the paper.
  ProtocolConfig config{Design::kStrawmanVariant, kTight, 32};
  FullNode full(setup().workload, setup().derived, config);
  const Address& addr = setup().workload->profiles[3].address;
  QueryResponse resp = full.query(addr);

  BloomKey key = BloomKey::from_bytes(addr.span());
  auto cbp = config.bloom.positions(key);
  GroundTruth gt = scan_ground_truth(*setup().workload, addr);
  std::set<std::uint64_t> tx_heights;
  for (auto& [h, txid] : gt.txs) tx_heights.insert(h);

  ASSERT_EQ(resp.fragments.size(), resp.tip_height);
  for (std::uint64_t h = 1; h <= resp.tip_height; ++h) {
    const BlockProof& frag = resp.fragments[h - 1];
    bool fails = full.context()->positions().check_fails(h, cbp);
    if (!fails) {
      EXPECT_EQ(frag.kind, BlockProof::Kind::kEmpty);
      EXPECT_FALSE(tx_heights.count(h));
    } else if (tx_heights.count(h)) {
      EXPECT_EQ(frag.kind, BlockProof::Kind::kExistentNoCount);
    } else {
      EXPECT_EQ(frag.kind, BlockProof::Kind::kIntegralBlock);
    }
  }
}

TEST(Protocol, LvqNeverShipsIntegralBlocks) {
  // Challenge 2 solved: even under heavy FPM pressure, LVQ responses
  // contain SMT absence proofs, never whole blocks.
  ProtocolConfig config{Design::kLvq, kTight, 32};
  FullNode full(setup().workload, setup().derived, config);
  for (const AddressProfile& p : setup().workload->profiles) {
    QueryResponse resp = full.query(p.address);
    for (const SegmentQueryProof& seg : resp.segments) {
      for (const auto& [height, proof] : seg.block_proofs) {
        EXPECT_NE(proof.kind, BlockProof::Kind::kIntegralBlock);
        EXPECT_NE(proof.kind, BlockProof::Kind::kExistentNoCount);
      }
    }
    SizeBreakdown b = resp.breakdown();
    EXPECT_EQ(b.block_bytes, 0u);
  }
}

TEST(Protocol, BmtDesignsShipNoPerBlockBfs) {
  ProtocolConfig config{Design::kLvq, kRoomy, 32};
  FullNode full(setup().workload, setup().derived, config);
  QueryResponse resp = full.query(setup().workload->profiles[0].address);
  EXPECT_TRUE(resp.block_bfs.empty());
  EXPECT_TRUE(resp.fragments.empty());
  EXPECT_FALSE(resp.segments.empty());
}

TEST(Protocol, AbsentAddressLvqResponseIsTiny) {
  // The headline effect (Fig. 12, Addr1): for an address with no history,
  // LVQ ships a handful of BFs; the strawman variant ships one BF per
  // block.
  ProtocolConfig lvq{Design::kLvq, kRoomy, 32};
  ProtocolConfig straw{Design::kStrawmanVariant, kRoomy, 32};
  QuerySession lvq_session(setup(), lvq);
  QuerySession straw_session(setup(), straw);
  const Address& absent = setup().workload->profiles[0].address;
  auto lvq_result = lvq_session.query(absent);
  auto straw_result = straw_session.query(absent);
  ASSERT_TRUE(lvq_result.outcome.ok);
  ASSERT_TRUE(straw_result.outcome.ok);
  EXPECT_LT(lvq_result.response_bytes * 5, straw_result.response_bytes);
  EXPECT_TRUE(lvq_result.outcome.history.blocks.empty());
}

TEST(Protocol, RequestBytesAreSmall) {
  ProtocolConfig config{Design::kLvq, kRoomy, 32};
  QuerySession session(setup(), config);
  auto result = session.query(setup().workload->profiles[1].address);
  EXPECT_LE(result.request_bytes, 32u);  // envelope + 20-byte address
}

TEST(Protocol, TransportCountsBothDirections) {
  ProtocolConfig config{Design::kLvq, kRoomy, 32};
  QuerySession session(setup(), config);
  std::uint64_t sent_before = session.transport().bytes_sent();
  std::uint64_t recv_before = session.transport().bytes_received();
  auto result = session.query(setup().workload->profiles[2].address);
  EXPECT_EQ(session.transport().bytes_sent() - sent_before,
            result.request_bytes);
  EXPECT_EQ(session.transport().bytes_received() - recv_before,
            result.response_bytes);
}

}  // namespace
}  // namespace lvq
