// Tests for height-range queries: cover decomposition, anchoring, wire
// round trips across designs, ground-truth restriction, and attacks.
#include <gtest/gtest.h>

#include <set>

#include "core/range_query.hpp"
#include "node/session.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 2121;
    c.num_blocks = 100;
    c.background_txs_per_block = 8;
    c.profiles = {{"p", 20, 13}, {"ghost", 0, 0}};
    return make_setup(c);
  }();
  return s;
}

constexpr BloomGeometry kGeom{192, 6};
constexpr std::uint32_t kM = 16;

GroundTruth range_truth(const Address& addr, std::uint64_t from,
                        std::uint64_t to) {
  GroundTruth all = scan_ground_truth(*setup().workload, addr);
  GroundTruth out;
  std::set<std::uint64_t> blocks;
  for (const auto& [height, txid] : all.txs) {
    if (height < from || height > to) continue;
    out.txs.emplace_back(height, txid);
    blocks.insert(height);
  }
  out.block_count = blocks.size();
  return out;
}

TEST(RangeCover, TilesTheRangeExactly) {
  for (std::uint64_t tip : {5ull, 16ull, 37ull, 100ull}) {
    for (std::uint64_t from = 1; from <= tip; from += 3) {
      for (std::uint64_t to = from; to <= tip; to += 5) {
        auto cover = range_cover(from, to, tip, kM);
        std::uint64_t expect = from;
        for (const RangePiece& piece : cover) {
          ASSERT_EQ(piece.first_height(), expect);
          ASSERT_GE(piece.last_height(), piece.first_height());
          expect = piece.last_height() + 1;
          // Anchor must contain the piece and be header-committed.
          std::uint32_t mc = merge_count(piece.anchor_height, kM);
          ASSERT_EQ(mc, std::uint32_t{1} << piece.anchor_level);
          ASSERT_LE(piece.anchor_height - mc + 1, piece.first_height());
          ASSERT_GE(piece.anchor_height, piece.last_height());
          ASSERT_LE(piece.anchor_height, tip);
        }
        ASSERT_EQ(expect, to + 1) << from << ".." << to << " tip " << tip;
      }
    }
  }
}

TEST(RangeCover, FullChainMatchesQueryForest) {
  // Covering [1, tip] should reduce to the §V-B forest (same ranges).
  for (std::uint64_t tip : {16ull, 37ull, 100ull}) {
    auto cover = range_cover(1, tip, tip, kM);
    auto forest = query_forest(tip, kM);
    ASSERT_EQ(cover.size(), forest.size()) << tip;
    for (std::size_t i = 0; i < cover.size(); ++i) {
      EXPECT_EQ(cover[i].first_height(), forest[i].first);
      EXPECT_EQ(cover[i].last_height(), forest[i].last);
      // Full-chain pieces are exactly the committed roots: empty paths.
      EXPECT_EQ(cover[i].path_length(), 0u);
    }
  }
}

TEST(RangeCover, PieceAndPathBounds) {
  // Cover size is O(segments + log M) and anchor paths are <= log2(M).
  constexpr std::uint32_t kBigM = 256;
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t tip = rng.range(1, 2000);
    std::uint64_t from = rng.range(1, tip);
    std::uint64_t to = rng.range(from, tip);
    auto cover = range_cover(from, to, tip, kBigM);
    std::uint64_t segments = (to - 1) / kBigM - (from - 1) / kBigM + 1;
    EXPECT_LE(cover.size(), segments + 2 * 8 /* 2*log2(256) */);
    for (const RangePiece& piece : cover) {
      EXPECT_LE(piece.path_length(), 8u);
      EXPECT_LE(std::uint64_t{1} << piece.level, kBigM);
    }
  }
}

TEST(RangeCover, SingleBlockPieces) {
  // A single-height range is one leaf piece anchored at (or above) it.
  auto cover = range_cover(6, 6, 16, 8);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].level, 0u);
  EXPECT_EQ(cover[0].first_height(), 6u);
  // Block 6 merges {5,6}; the leaf [6,6] anchors at height 6's root.
  EXPECT_EQ(cover[0].anchor_height, 6u);
  EXPECT_EQ(cover[0].anchor_level, 1u);
  EXPECT_EQ(cover[0].path_length(), 1u);
}

struct RangeParam {
  Design design;
  std::uint64_t from, to;
};

class RangeE2E : public ::testing::TestWithParam<RangeParam> {};

TEST_P(RangeE2E, VerifiedRangeMatchesGroundTruth) {
  const RangeParam& param = GetParam();
  ProtocolConfig config{param.design, kGeom, kM};
  QuerySession session(setup(), config);
  for (const AddressProfile& p : setup().workload->profiles) {
    auto result = session.light_node().query_range(
        session.transport(), p.address, param.from, param.to);
    ASSERT_TRUE(result.outcome.ok)
        << design_name(param.design) << " [" << param.from << ","
        << param.to << "] " << p.label << ": "
        << verify_error_name(result.outcome.error) << " — "
        << result.outcome.detail;
    GroundTruth gt = range_truth(p.address, param.from, param.to);
    std::set<std::pair<std::uint64_t, Hash256>> expect(gt.txs.begin(),
                                                       gt.txs.end());
    std::set<std::pair<std::uint64_t, Hash256>> got;
    for (const VerifiedBlockTxs& b : result.outcome.history.blocks) {
      for (const Transaction& tx : b.txs) got.emplace(b.height, tx.txid());
    }
    EXPECT_EQ(got, expect) << p.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RangeE2E,
    ::testing::Values(RangeParam{Design::kLvq, 1, 100},
                      RangeParam{Design::kLvq, 1, 1},
                      RangeParam{Design::kLvq, 100, 100},
                      RangeParam{Design::kLvq, 7, 23},
                      RangeParam{Design::kLvq, 17, 64},
                      RangeParam{Design::kLvq, 33, 48},
                      RangeParam{Design::kLvq, 2, 99},
                      RangeParam{Design::kLvqNoSmt, 7, 23},
                      RangeParam{Design::kStrawmanVariant, 7, 23},
                      RangeParam{Design::kStrawman, 7, 23},
                      RangeParam{Design::kLvqNoBmt, 7, 23}));

TEST(RangeQuery, RandomizedSweep) {
  ProtocolConfig config{Design::kLvq, kGeom, kM};
  QuerySession session(setup(), config);
  Rng rng(3);
  const Address& addr = setup().workload->profiles[0].address;
  for (int trial = 0; trial < 25; ++trial) {
    std::uint64_t from = rng.range(1, 100);
    std::uint64_t to = rng.range(from, 100);
    auto result =
        session.light_node().query_range(session.transport(), addr, from, to);
    ASSERT_TRUE(result.outcome.ok)
        << "[" << from << "," << to << "]: " << result.outcome.detail;
    GroundTruth gt = range_truth(addr, from, to);
    EXPECT_EQ(result.outcome.history.total_txs(), gt.txs.size());
  }
}

TEST(RangeQuery, SubRangeCostsLessThanFullChain) {
  ProtocolConfig config{Design::kLvq, kGeom, kM};
  QuerySession session(setup(), config);
  const Address& ghost = setup().workload->profiles[1].address;
  auto small = session.light_node().query_range(session.transport(), ghost,
                                                33, 48);
  auto full = session.query(ghost);
  ASSERT_TRUE(small.outcome.ok);
  ASSERT_TRUE(full.outcome.ok);
  EXPECT_LT(small.response_bytes, full.response_bytes);
}

TEST(RangeQuery, OutOfBoundsRefused) {
  ProtocolConfig config{Design::kLvq, kGeom, kM};
  QuerySession session(setup(), config);
  const Address& addr = setup().workload->profiles[0].address;
  auto result =
      session.light_node().query_range(session.transport(), addr, 50, 200);
  EXPECT_FALSE(result.outcome.ok);
}

TEST(RangeQuery, ServerAnsweringDifferentRangeRejected) {
  ProtocolConfig config{Design::kLvq, kGeom, kM};
  FullNode full(setup().workload, setup().derived, config);
  LightNode light(config);
  light.set_headers(full.headers());
  const Address& addr = setup().workload->profiles[0].address;

  LoopbackTransport swindler([&](ByteSpan req) {
    auto [type, payload] = decode_envelope(req);
    if (type != MsgType::kRangeQueryRequest) return full.handle_message(req);
    // Answer a smaller range than asked (hiding the tail).
    Reader r(payload);
    RangeQueryRequest parsed = RangeQueryRequest::deserialize(r);
    RangeQueryResponse resp =
        full.range_query(parsed.address, parsed.from, parsed.from);
    Writer w;
    resp.serialize(w);
    return encode_envelope(MsgType::kRangeQueryResponse,
                           ByteSpan{w.data().data(), w.data().size()});
  });
  auto result = light.query_range(swindler, addr, 7, 23);
  EXPECT_FALSE(result.outcome.ok);
  EXPECT_EQ(result.outcome.error, VerifyError::kShapeMismatch);
}

TEST(RangeQuery, TamperedAnchorPathRejected) {
  ProtocolConfig config{Design::kLvq, kGeom, kM};
  FullNode full(setup().workload, setup().derived, config);
  LightNode light(config);
  light.set_headers(full.headers());
  const Address& addr = setup().workload->profiles[0].address;

  RangeQueryResponse resp = full.range_query(addr, 7, 23);
  // Tamper a path sibling HASH: Eq. 2 commits to both child hashes, so the
  // recomputed anchor hash must break. (Tampering sibling-BF *bits* is
  // only detectable when it changes the OR — a cleared bit that the other
  // side also sets is absorbed and semantically inert, which is sound:
  // the sibling's content is bound by its own hash, and the verifier only
  // consumes it through the OR.)
  bool tampered = false;
  for (AnchoredTreeProof& piece : resp.pieces) {
    if (piece.path.empty()) continue;
    piece.path[0].sibling_hash.bytes[0] ^= 1;
    tampered = true;
    break;
  }
  ASSERT_TRUE(tampered) << "expected at least one anchored piece with a path";
  VerifyOutcome out = light.verify_range(addr, resp);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kBmtProofInvalid);
}

TEST(RangeQuery, DroppedBlockProofRejected) {
  ProtocolConfig config{Design::kLvq, kGeom, kM};
  FullNode full(setup().workload, setup().derived, config);
  LightNode light(config);
  light.set_headers(full.headers());
  const Address& addr = setup().workload->profiles[0].address;
  RangeQueryResponse resp = full.range_query(addr, 1, 100);
  bool dropped = false;
  for (AnchoredTreeProof& piece : resp.pieces) {
    if (!piece.block_proofs.empty()) {
      piece.block_proofs.pop_back();
      dropped = true;
      break;
    }
  }
  ASSERT_TRUE(dropped);
  VerifyOutcome out = light.verify_range(addr, resp);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.error, VerifyError::kBlockProofMissing);
}

TEST(RangeQuery, WireRoundTrip) {
  ProtocolConfig config{Design::kLvq, kGeom, kM};
  FullNode full(setup().workload, setup().derived, config);
  const Address& addr = setup().workload->profiles[0].address;
  RangeQueryResponse resp = full.range_query(addr, 17, 64);
  Writer w;
  resp.serialize(w);
  EXPECT_EQ(w.size(), resp.serialized_size());
  Reader r(ByteSpan{w.data().data(), w.data().size()});
  RangeQueryResponse back = RangeQueryResponse::deserialize(r, config);
  EXPECT_EQ(back.from, 17u);
  EXPECT_EQ(back.to, 64u);
  EXPECT_EQ(back.serialized_size(), resp.serialized_size());
}

}  // namespace
}  // namespace lvq
