// Fault-injection coverage: every failure mode a real full node can
// exhibit — stalls, disconnects, truncated frames, oversize claims,
// corrupt and garbage replies — exercised both through the in-process
// FaultInjectingTransport decorator and over real sockets via FlakyServer.
// The invariants: failures are typed (TransportError with the right kind)
// or clean verification rejections, nothing hangs, and RetryTransport
// recovers from transient faults.
#include <gtest/gtest.h>

#include <chrono>

#include "net/fault_injection.hpp"
#include "net/retry_transport.hpp"
#include "net/reactor_server.hpp"
#include "net/tcp_transport.hpp"
#include "node/session.hpp"
#include "workload/workload.hpp"

namespace lvq {
namespace {

const ExperimentSetup& setup() {
  static ExperimentSetup s = [] {
    WorkloadConfig c;
    c.seed = 717;
    c.num_blocks = 24;
    c.background_txs_per_block = 6;
    c.profiles = {{"a", 5, 4}, {"ghost", 0, 0}};
    return make_setup(c);
  }();
  return s;
}

constexpr BloomGeometry kGeom{256, 6};
const ProtocolConfig kConfig{Design::kLvq, kGeom, 8};

using Millis = std::chrono::milliseconds;

Bytes echo(ByteSpan req) { return Bytes(req.begin(), req.end()); }

TEST(FaultInjection, ScriptedTimeoutThenSuccess) {
  LoopbackTransport inner(echo);
  FaultPlan plan;
  plan.script = {FaultMode::kTimeout, FaultMode::kNone};
  FaultInjectingTransport faulty(inner, plan);
  Bytes msg = {1, 2, 3};
  try {
    faulty.round_trip(ByteSpan{msg.data(), msg.size()});
    FAIL() << "expected injected timeout";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kTimeout);
  }
  Bytes reply = faulty.round_trip(ByteSpan{msg.data(), msg.size()});
  EXPECT_EQ(reply, msg);
  EXPECT_EQ(faulty.calls(), 2u);
  EXPECT_EQ(faulty.faults_injected(), 1u);
}

TEST(FaultInjection, ScriptedDisconnectIsTyped) {
  LoopbackTransport inner(echo);
  FaultPlan plan;
  plan.script = {FaultMode::kDisconnect};
  FaultInjectingTransport faulty(inner, plan);
  Bytes msg = {9};
  try {
    faulty.round_trip(ByteSpan{msg.data(), msg.size()});
    FAIL() << "expected injected disconnect";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kDisconnect);
  }
}

TEST(FaultInjection, TruncateCorruptGarbageDamageTheReply) {
  Bytes msg(64, 0xab);
  {
    LoopbackTransport inner(echo);
    FaultPlan plan;
    plan.script = {FaultMode::kTruncateReply};
    FaultInjectingTransport faulty(inner, plan);
    Bytes reply = faulty.round_trip(ByteSpan{msg.data(), msg.size()});
    EXPECT_EQ(reply.size(), msg.size() / 2);
  }
  {
    LoopbackTransport inner(echo);
    FaultPlan plan;
    plan.script = {FaultMode::kCorruptReply};
    FaultInjectingTransport faulty(inner, plan);
    Bytes reply = faulty.round_trip(ByteSpan{msg.data(), msg.size()});
    ASSERT_EQ(reply.size(), msg.size());
    EXPECT_NE(reply, msg);
  }
  {
    LoopbackTransport inner(echo);
    FaultPlan plan;
    plan.script = {FaultMode::kGarbageReply};
    plan.seed = 5;
    FaultInjectingTransport faulty(inner, plan);
    Bytes reply = faulty.round_trip(ByteSpan{msg.data(), msg.size()});
    EXPECT_NE(reply, msg);
  }
}

TEST(FaultInjection, ByteBudgetDisconnect) {
  LoopbackTransport inner(echo);
  FaultPlan plan;
  plan.disconnect_after_bytes = 100;
  FaultInjectingTransport faulty(inner, plan);
  Bytes msg(40, 7);
  // 80 bytes per round trip (request + echoed reply): the second call
  // crosses the budget check only at the third.
  faulty.round_trip(ByteSpan{msg.data(), msg.size()});
  faulty.round_trip(ByteSpan{msg.data(), msg.size()});
  try {
    faulty.round_trip(ByteSpan{msg.data(), msg.size()});
    FAIL() << "expected byte-budget disconnect";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kDisconnect);
  }
}

TEST(FaultInjection, SeededProbabilitiesReplayExactly) {
  auto run = [](std::uint64_t seed) {
    LoopbackTransport inner(echo);
    FaultPlan plan;
    plan.timeout_prob = 0.2;
    plan.disconnect_prob = 0.2;
    plan.corrupt_prob = 0.3;
    plan.seed = seed;
    FaultInjectingTransport faulty(inner, plan);
    Bytes msg = {1, 2, 3, 4};
    std::vector<int> outcomes;
    for (int i = 0; i < 50; ++i) {
      try {
        Bytes reply = faulty.round_trip(ByteSpan{msg.data(), msg.size()});
        outcomes.push_back(reply == msg ? 0 : 1);
      } catch (const TransportError& e) {
        outcomes.push_back(2 + static_cast<int>(e.kind()));
      }
    }
    return outcomes;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultInjection, QuerySurvivesGarbageWithCleanRejection) {
  FullNode full(setup().workload, setup().derived, kConfig);
  LoopbackTransport inner([&](ByteSpan req) { return full.handle_message(req); });
  FaultPlan plan;
  plan.script = {FaultMode::kGarbageReply, FaultMode::kTruncateReply,
                 FaultMode::kCorruptReply, FaultMode::kNone};
  FaultInjectingTransport faulty(inner, plan);
  LightNode light(kConfig);
  light.set_headers(full.headers());
  const Address& addr = setup().workload->profiles[0].address;
  // Three damaged replies: each decodes to a failed outcome, never a crash
  // or a hang.
  for (int i = 0; i < 3; ++i) {
    auto result = light.query(faulty, addr);
    EXPECT_FALSE(result.outcome.ok);
  }
  auto ok = light.query(faulty, addr);
  EXPECT_TRUE(ok.outcome.ok) << ok.outcome.detail;
}

TEST(Retry, RecoversFromTransientFaults) {
  LoopbackTransport inner(echo);
  FaultPlan plan;
  plan.script = {FaultMode::kTimeout, FaultMode::kDisconnect, FaultMode::kNone};
  FaultInjectingTransport faulty(inner, plan);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  RetryTransport retry(faulty, policy);
  Bytes msg = {5, 6};
  Bytes reply = retry.round_trip(ByteSpan{msg.data(), msg.size()});
  EXPECT_EQ(reply, msg);
  EXPECT_EQ(retry.retries(), 2u);
}

TEST(Retry, GivesUpWithTypedErrorAfterMaxAttempts) {
  LoopbackTransport inner(echo);
  FaultPlan plan;
  plan.timeout_prob = 1.0;
  FaultInjectingTransport faulty(inner, plan);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_ms = 1;
  RetryTransport retry(faulty, policy);
  Bytes msg = {5};
  try {
    retry.round_trip(ByteSpan{msg.data(), msg.size()});
    FAIL() << "expected timeout after retries exhausted";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kTimeout);
  }
  EXPECT_EQ(retry.retries(), 1u);
  EXPECT_EQ(faulty.calls(), 2u);
}

TEST(Retry, OversizeIsNotRetried) {
  int calls = 0;
  LoopbackTransport inner([&](ByteSpan req) {
    ++calls;
    throw TransportError(TransportError::kOversize, "too big");
    return Bytes(req.begin(), req.end());
  });
  RetryTransport retry(inner, {});
  Bytes msg = {1};
  EXPECT_THROW(retry.round_trip(ByteSpan{msg.data(), msg.size()}),
               TransportError);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retry.retries(), 0u);
}

// ---- real sockets: FlakyServer vs hardened TcpTransport ----

TcpTransportOptions fast_client() {
  TcpTransportOptions o;
  o.io_timeout_ms = 200;
  o.connect_timeout_ms = 2'000;
  return o;
}

TEST(FlakyServer, StallTriggersClientDeadlineNotHang) {
  FaultPlan plan;
  plan.script = {FaultMode::kTimeout};
  plan.stall_ms = 5'000;  // far past the client's 200ms deadline
  FlakyServer server(echo, plan);
  TcpTransport client(server.port(), fast_client());
  Bytes msg = {1, 2, 3};
  auto start = std::chrono::steady_clock::now();
  try {
    client.round_trip(ByteSpan{msg.data(), msg.size()});
    FAIL() << "expected timeout against stalled server";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kTimeout);
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, Millis(2'000));  // deadline governed, no hang
  server.stop();  // must not hang either: worker poll sees client close
}

TEST(FlakyServer, TruncatedFrameIsMalformedNotHang) {
  FaultPlan plan;
  plan.script = {FaultMode::kTruncateReply};
  FlakyServer server(echo, plan);
  TcpTransport client(server.port(), fast_client());
  Bytes msg(32, 0xcd);
  try {
    client.round_trip(ByteSpan{msg.data(), msg.size()});
    FAIL() << "expected malformed frame";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kMalformedFrame);
  }
}

TEST(FlakyServer, OversizeLengthClaimRejected) {
  FaultPlan plan;
  plan.script = {FaultMode::kOversizeReply};
  FlakyServer server(echo, plan);
  TcpTransport client(server.port(), fast_client());
  Bytes msg = {1};
  try {
    client.round_trip(ByteSpan{msg.data(), msg.size()});
    FAIL() << "expected oversize rejection";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kOversize);
  }
}

TEST(FlakyServer, DisconnectThenAutoReconnect) {
  FaultPlan plan;
  plan.script = {FaultMode::kNone, FaultMode::kDisconnect, FaultMode::kNone};
  FlakyServer server(echo, plan);
  TcpTransport client(server.port(), fast_client());
  Bytes msg = {7, 7};
  EXPECT_EQ(client.round_trip(ByteSpan{msg.data(), msg.size()}), msg);
  try {
    client.round_trip(ByteSpan{msg.data(), msg.size()});
    FAIL() << "expected disconnect";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::kDisconnect);
  }
  EXPECT_FALSE(client.connected());
  // Third round trip reconnects transparently and hits the kNone entry.
  EXPECT_EQ(client.round_trip(ByteSpan{msg.data(), msg.size()}), msg);
  EXPECT_EQ(client.reconnects(), 1u);
}

TEST(FlakyServer, RetryRidesOutFlakyWindow) {
  FaultPlan plan;
  plan.script = {FaultMode::kDisconnect, FaultMode::kTruncateReply,
                 FaultMode::kNone};
  FlakyServer server(echo, plan);
  TcpTransport client(server.port(), fast_client());
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 1;
  RetryTransport retry(client, policy);
  Bytes msg = {4, 2};
  Bytes reply = retry.round_trip(ByteSpan{msg.data(), msg.size()});
  EXPECT_EQ(reply, msg);
  EXPECT_EQ(retry.retries(), 2u);
  EXPECT_EQ(server.requests_seen(), 3u);
}

TEST(FlakyServer, FullQueryProtocolThroughFaults) {
  FullNode full(setup().workload, setup().derived, kConfig);
  FaultPlan plan;
  plan.script = {FaultMode::kGarbageReply, FaultMode::kCorruptReply};
  plan.seed = 11;
  FlakyServer server([&](ByteSpan req) { return full.handle_message(req); },
                     plan);
  TcpTransport tcp(server.port(), fast_client());
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 1;
  RetryTransport retry(tcp, policy);
  LightNode light(kConfig);
  light.set_headers(full.headers());
  const Address& addr = setup().workload->profiles[0].address;
  // Garbage and corrupt replies arrive as well-framed bytes, so the
  // transport succeeds and verification rejects them cleanly...
  EXPECT_FALSE(light.query(retry, addr).outcome.ok);
  EXPECT_FALSE(light.query(retry, addr).outcome.ok);
  // ...and once the flaky window passes, the same wiring verifies.
  auto ok = light.query(retry, addr);
  EXPECT_TRUE(ok.outcome.ok) << ok.outcome.detail;
}

}  // namespace
}  // namespace lvq
