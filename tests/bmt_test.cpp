// Tests for the BMT (paper §III-B2, §IV-B1): segment-tree construction,
// per-block roots (Algorithm 1 as subtree lookup), endpoint search, and the
// merged inexistence proofs of §V-A2 including forgery attempts.
#include <gtest/gtest.h>

#include <bit>
#include <map>

#include "core/bmt.hpp"
#include "core/bmt_proof.hpp"
#include "util/rng.hpp"

namespace lvq {
namespace {

constexpr BloomGeometry kGeom{64, 4};  // 512 bits, 4 probes — small & punchy

/// Deterministic per-height position sets (a few "addresses" per block).
class FakeChain {
 public:
  FakeChain(std::uint64_t heights, std::uint64_t seed, int keys_per_block = 6) {
    Rng rng(seed);
    for (std::uint64_t h = 1; h <= heights; ++h) {
      std::vector<std::uint32_t>& p = positions_[h];
      for (int i = 0; i < keys_per_block; ++i) {
        BloomKey key{rng.next_u64(), rng.next_u64() | 1};
        std::uint64_t pos[64];
        kGeom.positions(key, pos);
        for (std::uint32_t j = 0; j < kGeom.hash_count; ++j) {
          p.push_back(static_cast<std::uint32_t>(pos[j]));
        }
      }
      std::sort(p.begin(), p.end());
      p.erase(std::unique(p.begin(), p.end()), p.end());
    }
  }

  SegmentBmt::LeafPositionsFn supplier() const {
    return [this](std::uint64_t h) -> const std::vector<std::uint32_t>& {
      return positions_.at(h);
    };
  }

  BloomFilter leaf_bf(std::uint64_t h) const {
    BloomFilter bf(kGeom);
    for (std::uint32_t p : positions_.at(h)) bf.set_bit(p);
    return bf;
  }

  /// Reference implementation: direct recursive build of the BMT over the
  /// inclusive height range [lo, hi] (the paper's Fig. 3, no subtree
  /// sharing).
  std::pair<Hash256, BloomFilter> naive(std::uint64_t lo, std::uint64_t hi) const {
    if (lo == hi) {
      BloomFilter bf = leaf_bf(lo);
      Hash256 h = bmt_leaf_hash(bf);
      return {h, bf};
    }
    std::uint64_t half = (hi - lo + 1) / 2;
    auto left = naive(lo, lo + half - 1);
    auto right = naive(lo + half, hi);
    BloomFilter bf = left.second;
    bf.merge(right.second);
    return {bmt_node_hash(left.first, right.first, bf), bf};
  }

 private:
  std::map<std::uint64_t, std::vector<std::uint32_t>> positions_;
};

TEST(BmtHash, LeafAndNodeDiffer) {
  BloomFilter bf(kGeom);
  bf.set_bit(3);
  Hash256 leaf = bmt_leaf_hash(bf);
  Hash256 node = bmt_node_hash(leaf, leaf, bf);
  EXPECT_NE(leaf, node);
}

TEST(BmtHash, HashCommitsToBloomFilter) {
  // §VI: tampering with the BF must change the node hash.
  BloomFilter a(kGeom), b(kGeom);
  b.set_bit(100);
  Hash256 child{};
  EXPECT_NE(bmt_node_hash(child, child, a), bmt_node_hash(child, child, b));
  EXPECT_NE(bmt_leaf_hash(a), bmt_leaf_hash(b));
}

TEST(SegmentBmt, PerBlockRootsMatchNaiveBmt) {
  // The paper defines one BMT per block (merging merge_count(h) blocks);
  // we maintain one tree per segment and look subtree roots up. Equality
  // with the direct per-block construction proves the subtree claim.
  constexpr std::uint32_t kM = 16;
  FakeChain chain(2 * kM, 42);
  for (std::uint64_t seg = 0; seg < 2; ++seg) {
    SegmentBmt bmt(seg * kM + 1, kM, kM, kGeom, chain.supplier());
    for (std::uint64_t h = seg * kM + 1; h <= (seg + 1) * kM; ++h) {
      std::uint32_t mc = merge_count(h, kM);
      EXPECT_EQ(bmt.root_for_block(h), chain.naive(h - mc + 1, h).first)
          << "height " << h;
    }
  }
}

TEST(SegmentBmt, PartialSegmentRootsMatchNaive) {
  constexpr std::uint32_t kM = 16;
  for (std::uint64_t available = 1; available <= kM; ++available) {
    FakeChain chain(available, 100 + available);
    SegmentBmt bmt(1, kM, available, kGeom, chain.supplier());
    for (std::uint64_t h = 1; h <= available; ++h) {
      std::uint32_t mc = merge_count(h, kM);
      EXPECT_EQ(bmt.root_for_block(h), chain.naive(h - mc + 1, h).first)
          << "available " << available << " height " << h;
    }
  }
}

TEST(SegmentBmt, NodeBfMatchesNaiveUnion) {
  constexpr std::uint32_t kM = 8;
  FakeChain chain(kM, 7);
  SegmentBmt bmt(1, kM, kM, kGeom, chain.supplier());
  for (std::uint32_t level = 0; level <= 3; ++level) {
    for (std::uint64_t j = 0; j < (kM >> level); ++j) {
      std::uint64_t lo = 1 + (j << level);
      std::uint64_t hi = lo + (std::uint64_t{1} << level) - 1;
      EXPECT_EQ(bmt.node_bf(level, j), chain.naive(lo, hi).second)
          << "level " << level << " j " << j;
    }
  }
}

TEST(SegmentBmt, IncompleteNodeAccessRejected) {
  constexpr std::uint32_t kM = 8;
  FakeChain chain(5, 8);
  SegmentBmt bmt(1, kM, 5, kGeom, chain.supplier());
  EXPECT_NO_THROW(bmt.node_hash(2, 0));  // leaves [0,4) complete
  EXPECT_THROW(bmt.node_hash(2, 1), std::logic_error);
  EXPECT_THROW(bmt.node_hash(3, 0), std::logic_error);
  EXPECT_NO_THROW(bmt.node_hash(0, 4));
}

TEST(SegmentBmt, CheckMasksMatchMaterializedBfs) {
  constexpr std::uint32_t kM = 16;
  FakeChain chain(kM, 11);
  SegmentBmt bmt(1, kM, kM, kGeom, chain.supplier());
  Rng rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    BloomKey probe{rng.next_u64(), rng.next_u64() | 1};
    std::vector<std::uint64_t> cbp = kGeom.positions(probe);
    BmtCheckMasks masks = bmt.check_masks(cbp);
    for (std::uint32_t level = 0; level <= 4; ++level) {
      for (std::uint64_t j = 0; j < (kM >> level); ++j) {
        BloomFilter bf = bmt.node_bf(level, j);
        bool fails = true;
        for (std::uint64_t p : cbp) fails &= bf.bit(p);
        EXPECT_EQ(masks.fails(level, j), fails)
            << "trial " << trial << " level " << level << " j " << j;
      }
    }
  }
}

TEST(Endpoints, SuccessfulRootIsSingleEndpoint) {
  // Fresh probe in a tiny chain: the root check almost surely succeeds.
  constexpr std::uint32_t kM = 16;
  FakeChain chain(kM, 13, /*keys_per_block=*/1);
  SegmentBmt bmt(1, kM, kM, BloomGeometry{64, 4}, chain.supplier());
  BloomKey probe{0xdeadbeef, 0x1234567 | 1};
  BmtCheckMasks masks = bmt.check_masks(kGeom.positions(probe));
  if (!masks.fails(4, 0)) {
    EXPECT_EQ(endpoint_stats(masks, 4, 0).total(), 1u);
    EXPECT_EQ(endpoint_stats(masks, 4, 0).inexistent_endpoints, 1u);
  }
}

TEST(Endpoints, MatchBruteForceTopDownSearch) {
  constexpr std::uint32_t kM = 32;
  FakeChain chain(kM, 17, 12);
  SegmentBmt bmt(1, kM, kM, kGeom, chain.supplier());
  Rng rng(18);
  for (int trial = 0; trial < 30; ++trial) {
    BloomKey probe{rng.next_u64(), rng.next_u64() | 1};
    auto cbp = kGeom.positions(probe);
    BmtCheckMasks masks = bmt.check_masks(cbp);

    // Brute force: recursive top-down search on materialized BFs.
    struct Brute {
      const SegmentBmt& bmt;
      const std::vector<std::uint64_t>& cbp;
      EndpointStats stats;
      void walk(std::uint32_t level, std::uint64_t j) {
        BloomFilter bf = bmt.node_bf(level, j);
        bool fails = true;
        for (std::uint64_t p : cbp) fails &= bf.bit(p);
        if (!fails) {
          stats.inexistent_endpoints++;
          return;
        }
        if (level == 0) {
          stats.failed_leaves++;
          return;
        }
        walk(level - 1, 2 * j);
        walk(level - 1, 2 * j + 1);
      }
    } brute{bmt, cbp, {}, };
    brute.walk(5, 0);

    EndpointStats fast = endpoint_stats(masks, 5, 0);
    EXPECT_EQ(fast.inexistent_endpoints, brute.stats.inexistent_endpoints);
    EXPECT_EQ(fast.failed_leaves, brute.stats.failed_leaves);
  }
}

// --- merged proofs ---

struct ProofFixture {
  std::uint32_t segment_length;
  std::uint64_t available;
  std::uint64_t seed;
};

class BmtProofSweep : public ::testing::TestWithParam<ProofFixture> {};

TEST_P(BmtProofSweep, ProofRoundTripsAndVerifies) {
  const ProofFixture& fx = GetParam();
  FakeChain chain(fx.available, fx.seed, 10);
  SegmentBmt bmt(1, fx.segment_length, fx.available, kGeom, chain.supplier());
  Rng rng(fx.seed + 1);
  for (int trial = 0; trial < 10; ++trial) {
    BloomKey probe{rng.next_u64(), rng.next_u64() | 1};
    auto cbp = kGeom.positions(probe);
    BmtCheckMasks masks = bmt.check_masks(cbp);

    // Query trees: binary decomposition of `available`.
    std::uint64_t cursor = 0;
    for (int bit = 63; bit >= 0; --bit) {
      std::uint64_t piece = std::uint64_t{1} << bit;
      if (!(fx.available & piece)) continue;
      std::uint32_t level = static_cast<std::uint32_t>(bit);
      std::uint64_t j = cursor >> bit;

      BmtNodeProof proof = build_bmt_proof(bmt, masks, level, j);

      // Serialize round trip first.
      Writer w;
      proof.serialize(w);
      EXPECT_EQ(w.size(), proof.serialized_size());
      Reader r(ByteSpan{w.data().data(), w.data().size()});
      BmtNodeProof decoded = BmtNodeProof::deserialize(r, kGeom, 64);
      EXPECT_TRUE(r.done());

      Hash256 root = bmt.node_hash(level, j);
      BmtProofOutcome out = verify_bmt_proof(decoded, root, kGeom, cbp, level);
      EXPECT_TRUE(out.ok) << out.error << " (level " << level << ")";

      // Failed leaves reported by the proof must match the masks.
      EndpointStats stats = endpoint_stats(masks, level, j);
      EXPECT_EQ(out.failed_leaf_locals.size(), stats.failed_leaves);
      EXPECT_EQ(proof.endpoints().total(), stats.total());
      for (std::uint64_t local : out.failed_leaf_locals) {
        EXPECT_TRUE(masks.fails(0, (j << level) + local));
      }
      cursor += piece;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BmtProofSweep,
    ::testing::Values(ProofFixture{1, 1, 21}, ProofFixture{4, 4, 22},
                      ProofFixture{16, 16, 23}, ProofFixture{16, 11, 24},
                      ProofFixture{64, 64, 25}, ProofFixture{64, 37, 26},
                      ProofFixture{128, 128, 27}));

class BmtProofAttack : public ::testing::Test {
 protected:
  BmtProofAttack() : chain_(kM, 31, 12), bmt_(1, kM, kM, kGeom, chain_.supplier()) {}

  /// Picks a probe key that produces at least one failed leaf.
  void make_proof() {
    Rng rng(32);
    for (int trial = 0; trial < 1000; ++trial) {
      BloomKey probe{rng.next_u64(), rng.next_u64() | 1};
      cbp_ = kGeom.positions(probe);
      masks_ = bmt_.check_masks(cbp_);
      if (endpoint_stats(masks_, kLevel, 0).failed_leaves >= 1 &&
          endpoint_stats(masks_, kLevel, 0).inexistent_endpoints >= 1) {
        proof_ = build_bmt_proof(bmt_, masks_, kLevel, 0);
        root_ = bmt_.node_hash(kLevel, 0);
        return;
      }
    }
    FAIL() << "could not find a probe with mixed endpoints";
  }

  static constexpr std::uint32_t kM = 32;
  static constexpr std::uint32_t kLevel = 5;
  FakeChain chain_;
  SegmentBmt bmt_;
  std::vector<std::uint64_t> cbp_;
  BmtCheckMasks masks_;
  BmtNodeProof proof_;
  Hash256 root_;
};

TEST_F(BmtProofAttack, HonestProofVerifies) {
  make_proof();
  EXPECT_TRUE(verify_bmt_proof(proof_, root_, kGeom, cbp_, kLevel).ok);
}

TEST_F(BmtProofAttack, WrongRootRejected) {
  make_proof();
  Hash256 wrong = root_;
  wrong.bytes[0] ^= 1;
  auto out = verify_bmt_proof(proof_, wrong, kGeom, cbp_, kLevel);
  EXPECT_FALSE(out.ok);
  EXPECT_TRUE(out.failed_leaf_locals.empty());
}

TEST_F(BmtProofAttack, TamperedEndpointBfRejected) {
  // Clearing a bit in an endpoint BF (to fake inexistence elsewhere) breaks
  // the hash chain because Eq. 2 commits to the filter.
  make_proof();
  BmtNodeProof* node = &proof_;
  while (node->kind == BmtNodeProof::Kind::kInterior) node = node->left.get();
  Bytes& bits = node->bf.mutable_data();
  bool flipped = false;
  for (std::uint8_t& b : bits) {
    if (b != 0) {
      b &= static_cast<std::uint8_t>(b - 1);
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped);
  EXPECT_FALSE(verify_bmt_proof(proof_, root_, kGeom, cbp_, kLevel).ok);
}

TEST_F(BmtProofAttack, FakeInexistenceClaimRejected) {
  // Claim an endpoint whose BF actually fails the check: the verifier must
  // insist on at least one clear checked bit.
  make_proof();
  // Turn the first failed leaf into a (bogus) inexistent endpoint.
  BmtNodeProof* node = &proof_;
  BmtNodeProof* failed = nullptr;
  std::vector<BmtNodeProof*> stack{node};
  while (!stack.empty()) {
    BmtNodeProof* cur = stack.back();
    stack.pop_back();
    if (cur->kind == BmtNodeProof::Kind::kFailedLeaf) {
      failed = cur;
      break;
    }
    if (cur->kind == BmtNodeProof::Kind::kInterior) {
      stack.push_back(cur->left.get());
      stack.push_back(cur->right.get());
    }
  }
  ASSERT_NE(failed, nullptr);
  failed->kind = BmtNodeProof::Kind::kInexistentEndpoint;
  auto out = verify_bmt_proof(proof_, root_, kGeom, cbp_, kLevel);
  EXPECT_FALSE(out.ok);
}

TEST_F(BmtProofAttack, MissingChildHashesRejected) {
  make_proof();
  // Find a non-leaf inexistent endpoint and strip its child hashes.
  std::vector<BmtNodeProof*> stack{&proof_};
  BmtNodeProof* endpoint = nullptr;
  while (!stack.empty()) {
    BmtNodeProof* cur = stack.back();
    stack.pop_back();
    if (cur->kind == BmtNodeProof::Kind::kInexistentEndpoint &&
        cur->child_hashes) {
      endpoint = cur;
      break;
    }
    if (cur->kind == BmtNodeProof::Kind::kInterior) {
      stack.push_back(cur->left.get());
      stack.push_back(cur->right.get());
    }
  }
  if (endpoint == nullptr) GTEST_SKIP() << "no non-leaf endpoint this time";
  endpoint->child_hashes.reset();
  EXPECT_FALSE(verify_bmt_proof(proof_, root_, kGeom, cbp_, kLevel).ok);
}

TEST_F(BmtProofAttack, WrongGeometryRejected) {
  make_proof();
  BmtNodeProof* node = &proof_;
  while (node->kind == BmtNodeProof::Kind::kInterior) node = node->left.get();
  node->bf = BloomFilter(BloomGeometry{kGeom.size_bytes * 2, kGeom.hash_count});
  EXPECT_FALSE(verify_bmt_proof(proof_, root_, kGeom, cbp_, kLevel).ok);
}

TEST(BmtProofDecode, DepthLimitEnforced) {
  // A pathological all-interior encoding must hit the depth guard instead
  // of recursing unboundedly.
  Writer w;
  for (int i = 0; i < 200; ++i) w.u8(1 /*kInterior*/);
  Reader r(ByteSpan{w.data().data(), w.data().size()});
  EXPECT_THROW(BmtNodeProof::deserialize(r, kGeom, 64), SerializeError);
}

}  // namespace
}  // namespace lvq
